"""Plain-text tables and JSON reports for experiment output.

``format_table``/``format_kv`` render the paper-style tables; ``to_json``
serialises an experiment result dict (title/headers/rows/metrics, plus an
optional embedded metrics-registry export) for the CI artifact step; and
``format_registry``/``registry_json`` plug the :mod:`repro.obs` exporters
into the same reporting surface.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, Optional, Sequence

from repro.obs import MetricsRegistry, Tracer, to_builtin, to_text


def wallclock() -> float:
    """Wall-clock seconds for harness progress reporting.

    The single sanctioned host-clock boundary in the repo: experiment
    logic runs on simulated time (``env.now``), and only the harness's
    "how long did this take in real life" lines may read the host clock
    — through here, so kamllint can allowlist exactly one call site.
    """
    return time.time()  # kamllint: allow[KL-DET001] harness reporting boundary


def _render(value: Any) -> str:
    if isinstance(value, float):
        if value >= 100:
            return f"{value:,.0f}"
        if value >= 1:
            return f"{value:,.2f}"
        return f"{value:.3f}"
    return str(value)


def format_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Fixed-width text table with a title rule.

    Rows shorter than ``headers`` are padded with empty cells; rows longer
    than ``headers`` grow the table (trailing columns get empty headers).
    """
    rendered = [[_render(cell) for cell in row] for row in rows]
    columns = max([len(headers)] + [len(row) for row in rendered])
    names = list(headers) + [""] * (columns - len(headers))
    for row in rendered:
        row.extend([""] * (columns - len(row)))
    widths = [
        max(len(names[col]), *(len(row[col]) for row in rendered)) if rendered
        else len(names[col])
        for col in range(columns)
    ]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(names)))
    lines.append("  ".join("-" * widths[i] for i in range(columns)))
    lines.extend(
        "  ".join(row[i].ljust(widths[i]) for i in range(columns))
        for row in rendered
    )
    return "\n".join(lines)


def format_kv(title: str, pairs: Dict[str, Any]) -> str:
    lines = [title, "=" * len(title)]
    width = max(len(k) for k in pairs) if pairs else 0
    lines.extend(
        f"{key.ljust(width)}  {_render(value)}" for key, value in pairs.items()
    )
    return "\n".join(lines)


def to_json(result: Dict[str, Any], path: Optional[str] = None, indent: int = 2) -> str:
    """Serialise an experiment result dict (and optionally write it).

    Embedded :class:`MetricsRegistry` values (e.g. a ``"registry"`` key)
    are expanded through the obs exporter and :class:`Tracer` values
    collapse to their per-span summary; anything else non-serialisable
    falls back to ``str``.
    """

    def _expand(value: Any) -> Any:
        if isinstance(value, MetricsRegistry):
            return to_builtin(value)
        if isinstance(value, Tracer):
            return value.summary()
        return value

    payload = {key: _expand(value) for key, value in result.items()}
    text = json.dumps(payload, indent=indent, sort_keys=True, default=str)
    if path is not None:
        with open(path, "w") as handle:
            handle.write(text)
            handle.write("\n")
    return text


def format_registry(registry: MetricsRegistry, title: str = "metrics") -> str:
    """Plaintext metrics report (the obs text exporter)."""
    return to_text(registry, title=title)


def registry_json(registry: MetricsRegistry, path: Optional[str] = None) -> str:
    """JSON metrics-registry export (the CI artifact payload)."""
    return to_json({"registry": registry}, path=path)
