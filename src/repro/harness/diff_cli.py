"""``python -m repro.harness diff`` — differential run attribution.

Compares two run reports (``harness prof --json-out`` artifacts, or the
perf-gate baseline document) and prints which components' share of
request time shifted beyond noise, which SLO percentiles moved, and a
ranked suspect list by owning subsystem.  Alternatively, give it a
workload and two seeds and it runs both profiles in-process first —
the quickest way to check that an observed shift clears seed noise.

Examples::

    python -m repro.harness diff /tmp/before.json /tmp/after.json
    python -m repro.harness diff --workload mixed --seed-a 7 --seed-b 11
"""

from __future__ import annotations

import argparse
import io
import json
import os
import sys
from typing import Any, Dict, List, Optional

from repro.obs.diff import (
    DEFAULT_FLOOR_US,
    DEFAULT_NOISE_PP,
    DEFAULT_NOISE_REL,
    diff_reports,
    markdown_diff,
)


def _load(path: str) -> Dict[str, Any]:
    with open(path) as handle:
        return json.load(handle)


def _profile_seed(workload: str, seed: int, ops: int) -> Dict[str, Any]:
    """Run one in-process kamlprof pass, discarding its console output."""
    from repro.harness import prof_cli

    args = prof_cli.build_parser().parse_args([
        "--workload", workload, "--ops", str(ops), "--seed", str(seed),
    ])
    return prof_cli.run_prof(args, out=io.StringIO())


def run_diff(args: argparse.Namespace, out=None) -> Dict[str, Any]:
    out = out if out is not None else sys.stdout
    if args.reports:
        if len(args.reports) != 2:
            raise SystemExit("diff needs exactly two report files")
        report_a = _load(args.reports[0])
        report_b = _load(args.reports[1])
        label_a, label_b = args.reports
    else:
        if args.seed_a is None or args.seed_b is None:
            raise SystemExit(
                "give two report files, or --seed-a and --seed-b"
            )
        report_a = _profile_seed(args.workload, args.seed_a, args.ops)
        report_b = _profile_seed(args.workload, args.seed_b, args.ops)
        label_a = f"{args.workload} seed {args.seed_a}"
        label_b = f"{args.workload} seed {args.seed_b}"

    report = diff_reports(
        report_a, report_b,
        noise_pp=args.noise_pp,
        noise_rel=args.noise_rel,
        floor_us=args.floor_us,
    )
    report["a"] = label_a
    report["b"] = label_b
    markdown = markdown_diff(
        report, title=f"Differential run report: {label_a} vs {label_b}"
    )
    print(markdown, file=out)
    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"diff report written to {args.json_out}", file=out)

    step_summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if step_summary:
        with open(step_summary, "a") as handle:
            handle.write(markdown)
            handle.write("\n")
    return report


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness diff",
        description="Attribute the difference between two runs to owning "
                    "components.",
    )
    parser.add_argument(
        "reports", nargs="*",
        help="two report JSON files (prof artifacts or baseline documents)",
    )
    parser.add_argument(
        "--workload", choices=("ycsb-b", "mixed"), default="mixed",
        help="workload for the in-process two-seed mode",
    )
    parser.add_argument("--seed-a", type=int, default=None)
    parser.add_argument("--seed-b", type=int, default=None)
    parser.add_argument("--ops", type=int, default=1000,
                        help="operations per in-process profile run")
    parser.add_argument(
        "--noise-pp", type=float, default=DEFAULT_NOISE_PP,
        help="breakdown-shift significance threshold (percentage points)",
    )
    parser.add_argument(
        "--noise-rel", type=float, default=DEFAULT_NOISE_REL,
        help="relative significance threshold for percentiles/telemetry",
    )
    parser.add_argument(
        "--floor-us", type=float, default=DEFAULT_FLOOR_US,
        help="absolute floor below which percentile shifts are noise",
    )
    parser.add_argument("--json-out", default=None,
                        help="write the diff report JSON here")
    return parser


def main(argv: Optional[List[str]] = None, out=None) -> int:
    args = build_parser().parse_args(argv)
    run_diff(args, out=out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
