"""Ablations of the design decisions DESIGN.md calls out.

These are not paper figures; they isolate individual mechanisms:

* GC victim policy (greedy / cost-benefit / KAML's wear-aware);
* mapping-table structure per namespace (bucket / open / sorted);
* the NVRAM page-buffer flush timer;
* WAL group commit in the baseline engine.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, List, Optional

from repro.config import FlashGeometry, KamlParams, ReproConfig
from repro.ftl.gc_policy import CostBenefitPolicy, GreedyPolicy, WearAwarePolicy
from repro.harness.runner import build_kaml_ssd, build_shore_engine
from repro.kaml import KamlSsd, NamespaceAttributes, PutItem
from repro.kaml import DedicatedLogsPolicy, ExplicitLogsPolicy
from repro.sim import Environment
from repro.workloads import ShoreAdapter, TpcB, kaml_fetch
from repro.workloads.micro import kaml_populate
from repro.workloads.oltp import drive
from repro.analysis import summarize


# ---------------------------------------------------------------------------
# GC victim policy
# ---------------------------------------------------------------------------

def gc_policy_ablation(
    overwrites: int = 600,
    working_set: int = 6,
    value_size: int = 2048,
) -> Dict[str, Any]:
    """Churn a tiny device under each victim policy; report relocation
    work (write amplification) and wear spread."""
    policies = {
        "greedy": GreedyPolicy,
        "cost-benefit": None,  # needs block size; built below
        "wear-aware": WearAwarePolicy,
    }
    rows: List[List[Any]] = []
    metrics: Dict[str, float] = {}

    for name in policies:
        env = Environment()
        geometry = FlashGeometry(
            channels=1, chips_per_channel=1, blocks_per_chip=12, pages_per_block=4
        )
        config = ReproConfig().with_(
            geometry=geometry, kaml=KamlParams(num_logs=1, flush_timeout_us=200.0)
        )
        ssd = KamlSsd(env, config)
        log = ssd.logs[0]
        if name == "greedy":
            log.gc_policy = GreedyPolicy()
        elif name == "cost-benefit":
            log.gc_policy = CostBenefitPolicy(log.block_capacity_bytes)
        else:
            log.gc_policy = WearAwarePolicy()

        def churn():
            nsid = yield from ssd.create_namespace(
                NamespaceAttributes(expected_keys=working_set * 8)
            )
            # Cold records interleave with hot ones so victim blocks carry
            # valid data that GC must relocate.
            for i in range(overwrites):
                yield from ssd.put(
                    [PutItem(nsid, i % working_set, ("hot", i), value_size)]
                )
                if i % 3 == 0:
                    cold_key = 1000 + (i // 3) % (working_set * 4)
                    yield from ssd.put(
                        [PutItem(nsid, cold_key, ("cold", i), value_size)]
                    )
                yield env.timeout(1500.0)
            yield from ssd.drain()

        drive(env, churn())
        relocated = log.stats.gc_relocated_records
        erased = log.stats.gc_erased_blocks
        low, high = ssd.array.erase_count_spread()
        write_amp = 1.0 + relocated / max(1, overwrites)
        rows.append([name, relocated, erased, write_amp, high - low])
        metrics[f"write-amp/{name}"] = write_amp
        metrics[f"wear-spread/{name}"] = high - low
        metrics[f"erased/{name}"] = erased

    return {
        "title": "Ablation: GC victim policy under overwrite churn",
        "headers": ["policy", "relocated records", "blocks erased",
                    "write amplification", "erase spread"],
        "rows": rows,
        "metrics": metrics,
    }


# ---------------------------------------------------------------------------
# Mapping-table structure
# ---------------------------------------------------------------------------

def index_structure_ablation(
    keys: int = 2048,
    value_size: int = 512,
    threads: int = 8,
    ops_per_thread: int = 30,
) -> Dict[str, Any]:
    """Get bandwidth per index structure at identical population."""
    rows: List[List[Any]] = []
    metrics: Dict[str, float] = {}
    for structure in ("bucket", "open", "sorted"):
        env, ssd = build_kaml_ssd()
        attributes = NamespaceAttributes(
            expected_keys=keys * 2, index_structure=structure
        )

        def create():
            namespace_id = yield from ssd.create_namespace(attributes)
            return namespace_id

        namespace_id = drive(env, create())
        kaml_populate(env, ssd, namespace_id, keys, value_size)
        fetch = kaml_fetch(env, ssd, namespace_id, keys, value_size,
                           threads, ops_per_thread)
        index = ssd.namespaces[namespace_id].index
        rows.append([structure, fetch.throughput_mb_s, fetch.mean_latency_us,
                     index.memory_bytes // 1024])
        metrics[f"mb_s/{structure}"] = fetch.throughput_mb_s
        metrics[f"latency/{structure}"] = fetch.mean_latency_us

    return {
        "title": "Ablation: Get performance per mapping-table structure",
        "headers": ["index", "MB/s", "mean latency us", "index KiB"],
        "rows": rows,
        "metrics": metrics,
    }


# ---------------------------------------------------------------------------
# NVRAM flush timer
# ---------------------------------------------------------------------------

def flush_timer_ablation(
    timeouts_us=(200.0, 1000.0, 5000.0),
    records: int = 48,
    value_size: int = 512,
) -> Dict[str, Any]:
    """Trickle-rate Puts: how long until everything is actually on flash?

    The timer bounds how long a partially filled page may hold committed
    data in NVRAM (Section IV-B).  Low-rate workloads drain faster with a
    short timer at the cost of padding pages (wasted chunks).
    """
    rows: List[List[Any]] = []
    metrics: Dict[str, float] = {}
    for timeout_us in timeouts_us:
        env = Environment()
        config = ReproConfig()
        # One log so trickled records actually share pages when the timer
        # lets them accumulate.
        config = config.with_(
            kaml=replace(config.kaml, flush_timeout_us=timeout_us, num_logs=1)
        )
        ssd = KamlSsd(env, config)

        def trickle():
            nsid = yield from ssd.create_namespace()
            for i in range(records):
                yield from ssd.put([PutItem(nsid, i, ("t", i), value_size)])
                yield env.timeout(300.0)  # slower than page fill wants
            start = env.now
            while ssd._staged:
                yield env.timeout(100.0)
            return env.now - start

        drain_lag = drive(env, trickle())
        wasted = sum(log.stats.wasted_chunks for log in ssd.logs)
        programmed = sum(log.stats.programmed_pages for log in ssd.logs)
        rows.append([timeout_us, drain_lag, programmed, wasted])
        metrics[f"drain-lag/{timeout_us}"] = drain_lag
        metrics[f"pages/{timeout_us}"] = programmed

    return {
        "title": "Ablation: NVRAM page-buffer flush timer (trickle writes)",
        "headers": ["timer us", "post-burst drain lag us", "pages programmed",
                    "wasted chunks"],
        "rows": rows,
        "metrics": metrics,
    }


# ---------------------------------------------------------------------------
# Quality of service: namespace-to-log isolation (Section IV-B)
# ---------------------------------------------------------------------------

def qos_isolation_ablation(
    noisy_threads: int = 12,
    victim_ops: int = 80,
    victim_records: int = 256,
    value_size: int = 2048,
) -> Dict[str, Any]:
    """A read-latency-sensitive tenant next to a write-flooding neighbor.

    With shared logs the victim's records are spread over every flash
    target, so its reads queue behind the neighbor's 700 us page
    programs.  Partitioning pins the victim to 8 logs the neighbor never
    touches, keeping its chips idle — the paper's claim that the
    namespace-to-log mapping "allows the SSD to control the allocation
    of resources" (Section IV-B).
    """
    rows: List[List[Any]] = []
    metrics: Dict[str, float] = {}

    for mode in ("shared", "partitioned"):
        env = Environment()
        ssd = KamlSsd(env, ReproConfig())

        def create():
            if mode == "shared":
                noisy = yield from ssd.create_namespace(
                    NamespaceAttributes(expected_keys=8192)
                )
                victim = yield from ssd.create_namespace(
                    NamespaceAttributes(expected_keys=1024)
                )
            else:
                noisy = yield from ssd.create_namespace(
                    NamespaceAttributes(
                        expected_keys=8192, log_policy=DedicatedLogsPolicy(56)
                    )
                )
                taken = set(ssd.namespaces[noisy].log_ids)
                rest = [log.log_id for log in ssd.logs if log.log_id not in taken]
                victim = yield from ssd.create_namespace(
                    NamespaceAttributes(
                        expected_keys=1024, log_policy=ExplicitLogsPolicy(rest)
                    )
                )
            return noisy, victim

        noisy_ns, victim_ns = drive(env, create())
        # Place the victim's records (on its assigned logs) and drain.
        kaml_populate(env, ssd, victim_ns, victim_records, value_size)
        victim_latencies: List[float] = []
        stop = {"flag": False}

        def noisy_writer(thread_id):
            i = 0
            while not stop["flag"]:
                key = thread_id * 1_000_000 + i
                yield from ssd.put([PutItem(noisy_ns, key, ("n", i), value_size)])
                i += 1

        def victim_reader():
            yield env.timeout(3000.0)  # let the flood reach steady state
            for i in range(victim_ops):
                key = (i * 37) % victim_records
                start = env.now
                yield from ssd.get(victim_ns, key)
                victim_latencies.append(env.now - start)
                yield env.timeout(400.0)
            stop["flag"] = True

        for thread_id in range(noisy_threads):
            env.process(noisy_writer(thread_id))
        victim = env.process(victim_reader())
        env.run_until(victim)

        summary = summarize(victim_latencies)
        rows.append([mode, summary.mean_us, summary.p95_us, summary.max_us])
        metrics[f"mean/{mode}"] = summary.mean_us
        metrics[f"p95/{mode}"] = summary.p95_us

    return {
        "title": "Ablation: victim-tenant Get latency under a neighbor's write flood",
        "headers": ["log assignment", "mean us", "p95 us", "max us"],
        "rows": rows,
        "metrics": metrics,
    }


# ---------------------------------------------------------------------------
# WAL group commit (baseline engine)
# ---------------------------------------------------------------------------

def group_commit_ablation(
    threads: int = 8,
    txns_per_thread: int = 25,
    branches: int = 4,
    accounts_per_branch: int = 400,
    seed: Optional[int] = None,
) -> Dict[str, Any]:
    """TPC-B on the baseline with and without group commit."""
    rows: List[List[Any]] = []
    metrics: Dict[str, float] = {}
    for group_commit in (True, False):
        env, engine = build_shore_engine(group_commit=group_commit)
        adapter = ShoreAdapter(engine)
        tpcb = TpcB(env, adapter, branches=branches,
                    accounts_per_branch=accounts_per_branch,
                    **({} if seed is None else {"seed": seed}))
        tpcb.setup()
        result = tpcb.run(threads=threads, txns_per_thread=txns_per_thread)
        label = "group commit" if group_commit else "fsync per commit"
        rows.append([label, result.tps, engine.fs.fsyncs])
        metrics[f"tps/{label}"] = result.tps
        metrics[f"fsyncs/{label}"] = engine.fs.fsyncs

    return {
        "title": "Ablation: WAL group commit in the Shore-MT baseline (TPC-B)",
        "headers": ["mode", "tps", "fsyncs"],
        "rows": rows,
        "metrics": metrics,
    }
