"""Cluster serving-tier driver: ``python -m repro.harness cluster``.

The CI front door for :mod:`repro.cluster`.  Each cell of the matrix
(shard count x seed) builds a cluster, drives the multi-tenant workload
(:mod:`repro.workloads.multitenant`) plus a deliberately skewed homed
namespace, lets the autobalancer migrate that namespace off the hot
shard mid-run, then drains and verifies every acknowledged write
through the serving tier.  A verdict table goes to stdout (and
``GITHUB_STEP_SUMMARY`` when present); ``--json-out`` writes the full
report including the aggregate throughput and rebalance-latency numbers
the perf gate consumes; failing cells dump their flight recorder::

    python -m repro.harness cluster --shards 4 --seeds 3
    python -m repro.harness cluster --shards 2,4,8 --seeds 1,2,3 \\
        --json-out cluster.json --flight-dir artifacts/
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from random import Random
from typing import Any, Dict, List, Optional

from repro.cluster import (
    Autobalancer,
    ClusterConfig,
    HotShardDetector,
    KamlCluster,
    install_cluster_probes,
)
from repro.fault.cluster_harness import default_device_config
from repro.obs import TimeSeriesCollector
from repro.sim import Environment
from repro.workloads import MultiTenantWorkload

#: The homed namespace every cell skews: enough serial writes to trip
#: hot-shard detection so the autobalancer migrates it mid-run.
HOT_NAMESPACE = "hot-homed"
HOT_TENANT = "gold"
HOT_KEYS = 24
HOT_OPS = 240
HOT_VALUE_SIZE = 420
HOT_THINK_US = (5.0, 30.0)
#: With the background tenants hashed across every shard, the homed
#: shard's excess over the mean tops out near 2x at two shards — a 1.5x
#: trigger would need the skew writer to out-issue the whole background
#: population, so the cells run the detector at a gentler ratio.
HOT_RATIO = 1.2


def _hot_writer(env: Environment, cluster: KamlCluster, seed: int,
                model: Dict[int, Any]) -> Any:
    """Single serial writer hammering the homed namespace."""
    rng = Random(seed * 7_368_787 + 11)
    for op in range(HOT_OPS):
        yield env.timeout(rng.uniform(*HOT_THINK_US))
        key = rng.randrange(HOT_KEYS)
        value = ("hot", key, op)
        yield from cluster.put(
            HOT_NAMESPACE, [(key, value, HOT_VALUE_SIZE)]
        )
        model[key] = value


def run_cluster_cell(
    num_shards: int,
    seed: int,
    collector_interval_us: float = 2_000.0,
    balance_interval_us: float = 8_000.0,
) -> Dict[str, Any]:
    """One (shard count, seed) cell: workload + mid-run rebalance + verify."""
    env = Environment()
    cluster = KamlCluster.build(
        env, default_device_config(), ClusterConfig(num_shards=num_shards)
    )
    collector = TimeSeriesCollector(env, interval_us=collector_interval_us)
    install_cluster_probes(collector, cluster)
    collector.start()
    detector = HotShardDetector(collector, cluster, hot_ratio=HOT_RATIO)
    balancer = Autobalancer(
        cluster, detector,
        check_interval_us=balance_interval_us, max_migrations=2,
    )
    workload = MultiTenantWorkload(env, cluster, seed=seed)
    hot_model: Dict[int, Any] = {}
    failures: List[str] = []

    def drive() -> Any:
        yield from workload.setup()
        yield from cluster.create_namespace(
            HOT_NAMESPACE, tenant=HOT_TENANT, mode="homed", home_shard=0
        )
        balancer.start()
        hot_proc = env.process(_hot_writer(env, cluster, seed, hot_model))
        yield from workload.run()
        yield hot_proc
        collector.stop()
        yield from cluster.drain()
        failures.extend((yield from workload.verify()))
        for key in sorted(hot_model):
            observed = yield from cluster.get(HOT_NAMESPACE, key)
            if observed != hot_model[key]:
                failures.append(
                    f"{HOT_NAMESPACE}[{key}]: expected {hot_model[key]!r}, "
                    f"got {observed!r}"
                )

    proc = env.process(drive())
    try:
        env.run_until(proc)
    except Exception as exc:  # a cell must never take down the matrix
        failures.append(f"cell crashed: {type(exc).__name__}: {exc}")

    summary = workload.summary()
    migrated = list(balancer.migrations)
    if not migrated:
        failures.append(
            "autobalancer never migrated the homed namespace; the hot-shard "
            "signal or the rebalance path is broken"
        )
    rebalance_p99 = cluster.metrics.histogram("cluster.rebalance.us").percentile(0.99)
    total_ops = summary["total_ops"] + HOT_OPS
    elapsed_us = summary["elapsed_us"]
    return {
        "ok": not failures,
        "failures": failures,
        "shards": num_shards,
        "seed": seed,
        "total_ops": total_ops,
        "ops_per_sec": round(total_ops * 1e6 / elapsed_us, 3) if elapsed_us else 0.0,
        "total_sheds": summary["total_sheds"],
        "tenants": summary["tenants"],
        "rebalances": int(cluster.metrics.total("cluster.rebalances")),
        "rebalance_p99_us": round(rebalance_p99, 3),
        "migrations": [
            {"namespace": name, "source": source, "target": target}
            for name, source, target in migrated
        ],
        "sim_time_us": env.now,
        "recorder": cluster.tracer.recorder,
    }


def run_cluster_cells(
    shard_counts: List[int], seeds: List[int]
) -> Dict[str, Any]:
    """The full matrix, plus the aggregate numbers the perf gate reads."""
    cells = [
        run_cluster_cell(num_shards, seed)
        for num_shards in shard_counts
        for seed in seeds
    ]
    ok_cells = [cell for cell in cells if cell["ok"]]
    throughput = (
        sum(cell["ops_per_sec"] for cell in ok_cells) / len(ok_cells)
        if ok_cells else 0.0
    )
    rebalance_p99 = max(
        (cell["rebalance_p99_us"] for cell in ok_cells), default=0.0
    )
    return {
        "ok": all(cell["ok"] for cell in cells),
        "shards": list(shard_counts),
        "seeds": list(seeds),
        "cells": cells,
        "ops_per_sec": round(throughput, 3),
        "rebalance_p99_us": round(rebalance_p99, 3),
    }


def _parse_ints(text: str, flag: str) -> List[int]:
    try:
        values = [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise SystemExit(f"{flag} wants comma-separated integers, got {text!r}")
    if not values:
        raise SystemExit(f"{flag} must name at least one value")
    return values


def _cell_row(cell: Dict[str, Any]) -> str:
    status = "ok" if cell["ok"] else "FAIL"
    detail = "" if cell["ok"] else f'  {"; ".join(cell["failures"][:2])}'
    return (
        f"  [{status:>4}] shards {cell['shards']:>2}  seed {cell['seed']:>3}  "
        f"{cell['ops_per_sec']:>9.0f} ops/s  "
        f"rebalances {cell['rebalances']}  sheds {cell['total_sheds']}{detail}"
    )


def _md_cell(text: str, limit: int = 160) -> str:
    text = text.replace("|", "\\|").replace("\n", " ")
    if len(text) > limit:
        text = text[: limit - 1] + "…"
    return text


def _step_summary(report: Dict[str, Any]) -> str:
    lines = [
        "### Cluster serving-tier matrix",
        "",
        "| shards | seed | ops/s | rebalances | rebalance p99 (us) | sheds | result |",
        "|---:|---:|---:|---:|---:|---:|---|",
    ]
    for cell in report["cells"]:
        result = "ok" if cell["ok"] else "FAIL: " + _md_cell(cell["failures"][0])
        lines.append(
            f"| {cell['shards']} | {cell['seed']} | {cell['ops_per_sec']:.0f} "
            f"| {cell['rebalances']} | {cell['rebalance_p99_us']:.0f} "
            f"| {cell['total_sheds']} | {result} |"
        )
    lines.append("")
    lines.append(
        f"aggregate: {report['ops_per_sec']:.0f} ops/s, "
        f"rebalance p99 {report['rebalance_p99_us']:.0f} us"
    )
    lines.append("")
    return "\n".join(lines)


def _json_payload(report: Dict[str, Any]) -> Dict[str, Any]:
    cells = [
        {k: v for k, v in cell.items() if k != "recorder"}
        for cell in report["cells"]
    ]
    return {**{k: v for k, v in report.items() if k != "cells"}, "cells": cells}


def _write_flight_dumps(report: Dict[str, Any], flight_dir: str) -> List[str]:
    os.makedirs(flight_dir, exist_ok=True)
    written = []
    for cell in report["cells"]:
        if cell["ok"] or cell.get("recorder") is None:
            continue
        path = os.path.join(
            flight_dir, f"flight-shards{cell['shards']}-seed{cell['seed']}.jsonl"
        )
        cell["recorder"].write_jsonl(path)
        written.append(path)
    return written


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness cluster",
        description="Sharded serving-tier workload + rebalance matrix.",
    )
    parser.add_argument(
        "--shards", default="4",
        help="comma-separated shard counts (default: 4)",
    )
    parser.add_argument(
        "--seeds", default="1,2,3",
        help="comma-separated workload seeds (default: 1,2,3)",
    )
    parser.add_argument(
        "--json-out", default=None,
        help="write the full matrix report as JSON to this path",
    )
    parser.add_argument(
        "--flight-dir", default=None,
        help="dump flight-recorder JSONL for each failing cell here",
    )
    args = parser.parse_args(argv)

    shard_counts = _parse_ints(args.shards, "--shards")
    seeds = _parse_ints(args.seeds, "--seeds")
    report = run_cluster_cells(shard_counts, seeds)

    print(f"cluster matrix: shards {shard_counts}, seeds {seeds}")
    for cell in report["cells"]:
        print(_cell_row(cell))
    print(
        f"aggregate: {report['ops_per_sec']:.0f} ops/s, "
        f"rebalance p99 {report['rebalance_p99_us']:.0f} us"
    )

    if args.json_out:
        out_dir = os.path.dirname(args.json_out)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        with open(args.json_out, "w") as handle:
            json.dump(_json_payload(report), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"cluster report -> {args.json_out}")
    if args.flight_dir and not report["ok"]:
        for path in _write_flight_dumps(report, args.flight_dir):
            print(f"flight recorder -> {path}")
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as handle:
            handle.write(_step_summary(report))
            handle.write("\n")

    failing = [cell for cell in report["cells"] if not cell["ok"]]
    if failing:
        print(
            f"\nCLUSTER MATRIX FAILED ({len(failing)} failing cell(s)); "
            "reproduce one locally with e.g.\n"
            f"  python -m repro.harness cluster --shards {failing[0]['shards']} "
            f"--seeds {failing[0]['seed']}",
            file=sys.stderr,
        )
        return 1
    print("\ncluster matrix passed: every acknowledged write read back intact")
    return 0


if __name__ == "__main__":
    sys.exit(main())
