"""``python -m repro.harness record`` / ``replay`` — kamltrace front end.

``record`` runs a seeded workload with the op journal enabled and
streams every host-visible store/device command to a JSONL(.gz) file —
or, for the ``synth-*`` workloads, emits a synthetic journal with the
same schema without running a simulation at all.  ``replay`` re-issues
a journal against a fresh stack in open- or closed-loop mode and can
re-capture while doing so, which is the capture -> replay -> capture
round trip the determinism suite pins.

Example::

    python -m repro.harness record --workload ycsb-b --ops 1000 \
        --out /tmp/ycsb-b.jsonl.gz
    python -m repro.harness replay /tmp/ycsb-b.jsonl.gz --mode closed \
        --threads 1 --capture-out /tmp/ycsb-b.replayed.jsonl.gz
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from typing import Any, Dict, List, Optional

from repro.harness.reporting import format_kv
from repro.kaml import NamespaceAttributes
from repro.obs.oplog import load_journal, mix_summary, write_journal
from repro.workloads.replay import (
    SYNTH_GENERATORS,
    journal_to_issues,
    prepare_namespaces,
    replay_journal,
)

SIM_WORKLOADS = ("ycsb-b", "mixed")
RECORD_WORKLOADS = SIM_WORKLOADS + tuple(sorted(SYNTH_GENERATORS))


# ---------------------------------------------------------------------------
# record
# ---------------------------------------------------------------------------

def _record_ycsb_b(env, ssd, store, args) -> None:
    from repro.workloads import KamlAdapter, Ycsb

    ycsb = Ycsb(
        env,
        KamlAdapter(store),
        records=args.records,
        workload="b",
        seed=args.seed,
    )
    ycsb.setup()
    ops_per_thread = max(1, args.ops // args.threads)
    ycsb.run(threads=args.threads, ops_per_thread=ops_per_thread)


def _record_mixed(env, ssd, store, args) -> None:
    from repro.workloads.oltp import drive

    def create():
        attributes = NamespaceAttributes(
            expected_keys=int(args.key_space * 0.75), target_load=0.75
        )
        namespace_id = yield from ssd.create_namespace(attributes)
        return namespace_id

    namespace_id = drive(env, create())

    def worker(rng, ops):
        for _ in range(ops):
            key = rng.randrange(args.key_space)
            if rng.random() < 0.5:
                yield from store.put(namespace_id, key, ("rec", key), 512)
            else:
                yield from store.get(namespace_id, key)

    ops_per_thread = max(1, args.ops // args.threads)
    workers = [
        env.process(worker(random.Random(args.seed + 997 * t), ops_per_thread))
        for t in range(args.threads)
    ]
    env.run_until(env.all_of(workers))


_SIM_RECORDERS = {
    "ycsb-b": _record_ycsb_b,
    "mixed": _record_mixed,
}


def _print_journal_summary(rows: List[Dict[str, Any]], out) -> None:
    summary = mix_summary(rows)
    print(format_kv("Journal summary", {
        "rows": sum(summary["ops"].values()),
        "ops": json.dumps(summary["ops"], sort_keys=True),
        "layers": json.dumps(summary["layers"], sort_keys=True),
        "namespaces": json.dumps(summary["namespaces"], sort_keys=True),
        "working_set": summary["working_set"],
        "bytes": summary["bytes"],
        "span_us": round(summary["span_us"], 1),
    }), file=out)


def run_record(args: argparse.Namespace, out=None) -> Dict[str, Any]:
    out = out if out is not None else sys.stdout
    if args.workload in SYNTH_GENERATORS:
        rows = SYNTH_GENERATORS[args.workload](
            args.ops,
            args.key_space,
            read_fraction=args.read_fraction,
            value_size=args.value_size,
            seed=args.seed,
        )
        written = write_journal(args.out, rows)
        print(f"synthetic journal: {written} rows -> {args.out}", file=out)
        _print_journal_summary(rows, out)
        return {"rows": written, "dropped": 0, "out": args.out}

    from repro.harness.runner import build_kaml_store

    env, ssd, store = build_kaml_store(cache_bytes=args.cache_bytes)
    journal = ssd.enable_oplog(path=args.out, capacity=args.capacity)
    try:
        _SIM_RECORDERS[args.workload](env, ssd, store, args)
        # Drain so every captured command has acked before the file closes.
        for _ in range(2):
            settle = env.process(ssd.drain())
            env.run_until(settle)
    finally:
        journal.close()
    counts = journal.counts()
    print(
        f"captured {counts['recorded']} ops ({counts['dropped']} dropped, "
        f"capacity {counts['capacity']}) -> {args.out}",
        file=out,
    )
    rows = load_journal(args.out)
    _print_journal_summary(rows, out)
    return {"rows": counts["recorded"], "dropped": counts["dropped"],
            "out": args.out}


def build_record_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness record",
        description="Capture an op journal from a seeded workload (or "
                    "synthesize one with the same schema).",
    )
    parser.add_argument(
        "--workload", choices=RECORD_WORKLOADS, default="ycsb-b",
        help="simulated workload to capture, or a synthetic generator",
    )
    parser.add_argument("--out", required=True,
                        help="journal path (.jsonl or .jsonl.gz)")
    parser.add_argument("--ops", type=int, default=1000, help="total operations")
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument(
        "--records", type=int, default=1000, help="YCSB table size (ycsb-b)"
    )
    parser.add_argument(
        "--key-space", type=int, default=512,
        help="key range (mixed and synth-* workloads)",
    )
    parser.add_argument("--seed", type=int, default=7, help="workload RNG seed")
    parser.add_argument("--cache-bytes", type=int, default=1 << 20)
    parser.add_argument(
        "--capacity", type=int, default=1 << 20,
        help="op-journal row budget; rows beyond it are dropped (counted)",
    )
    parser.add_argument(
        "--read-fraction", type=float, default=0.5,
        help="read share for synth-* generators",
    )
    parser.add_argument(
        "--value-size", type=int, default=1024,
        help="put payload size for synth-* generators",
    )
    return parser


def record_main(argv: Optional[List[str]] = None, out=None) -> int:
    args = build_record_parser().parse_args(argv)
    run_record(args, out=out)
    return 0


# ---------------------------------------------------------------------------
# replay
# ---------------------------------------------------------------------------

def _percentile(sorted_values: List[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                max(0, int(round(fraction * (len(sorted_values) - 1)))))
    return sorted_values[index]


def run_replay(args: argparse.Namespace, out=None) -> Dict[str, Any]:
    out = out if out is not None else sys.stdout
    rows = load_journal(args.journal)
    issues = journal_to_issues(rows, layer=args.layer)

    from repro.harness.runner import build_kaml_ssd, build_kaml_store

    if args.layer == "store":
        env, ssd, target = build_kaml_store(cache_bytes=args.cache_bytes)
    else:
        env, ssd = build_kaml_ssd()
        target = ssd
    namespace_map = prepare_namespaces(env, ssd, rows, layer=args.layer)

    capture = None
    if args.capture_out:
        capture = ssd.enable_oplog(path=args.capture_out, capacity=args.capacity)
    try:
        result = replay_journal(
            env, target, issues,
            namespace_map=namespace_map,
            mode=args.mode,
            threads=args.threads,
            speed=args.speed,
        )
        for _ in range(2):
            settle = env.process(ssd.drain())
            env.run_until(settle)
    finally:
        if capture is not None:
            capture.close()

    latencies = sorted(result.latencies_us)
    report = {
        "journal": args.journal,
        "layer": args.layer,
        "mode": args.mode,
        "threads": args.threads,
        "speed": args.speed,
        "issues": len(issues),
        "ops": result.ops,
        "elapsed_us": result.elapsed_us,
        "ops_per_second": result.ops_per_second,
        "throughput_mb_s": result.throughput_mb_s,
        "latency_p50_us": _percentile(latencies, 0.50),
        "latency_p99_us": _percentile(latencies, 0.99),
        "namespace_map": {str(k): v for k, v in sorted(namespace_map.items())},
    }
    if capture is not None:
        report["capture"] = capture.counts()
        report["capture_out"] = args.capture_out
    print(format_kv(f"Replay ({args.mode}-loop)", {
        "issues": report["issues"],
        "ops": report["ops"],
        "elapsed_us": round(report["elapsed_us"], 1),
        "kops_s": round(report["ops_per_second"] / 1e3, 1),
        "p50_us": round(report["latency_p50_us"], 2),
        "p99_us": round(report["latency_p99_us"], 2),
    }), file=out)
    if capture is not None:
        print(
            f"re-captured {report['capture']['recorded']} ops -> "
            f"{args.capture_out}",
            file=out,
        )
    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"replay report written to {args.json_out}", file=out)
    return report


def build_replay_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness replay",
        description="Re-issue a captured or synthetic op journal against "
                    "a fresh stack.",
    )
    parser.add_argument("journal", help="journal path (.jsonl or .jsonl.gz)")
    parser.add_argument(
        "--mode", choices=("closed", "open"), default="closed",
        help="closed: lanes issue back-to-back; open: honor recorded gaps",
    )
    parser.add_argument(
        "--threads", type=int, default=1,
        help="closed-loop lanes (1 preserves the exact captured order)",
    )
    parser.add_argument(
        "--speed", type=float, default=1.0,
        help="open-loop time compression (2.0 replays twice as fast)",
    )
    parser.add_argument(
        "--layer", choices=("ssd", "store"), default="ssd",
        help="which captured layer to re-issue (never both: the store "
             "layer re-generates its own device traffic)",
    )
    parser.add_argument("--cache-bytes", type=int, default=1 << 20,
                        help="host cache size for --layer store")
    parser.add_argument(
        "--capture-out", default=None,
        help="re-capture the replay into this journal (round-trip check)",
    )
    parser.add_argument("--capacity", type=int, default=1 << 20,
                        help="re-capture row budget")
    parser.add_argument("--json-out", default=None,
                        help="write the replay report JSON here")
    return parser


def replay_main(argv: Optional[List[str]] = None, out=None) -> int:
    args = build_replay_parser().parse_args(argv)
    run_replay(args, out=out)
    return 0


if __name__ == "__main__":
    sys.exit(record_main())
