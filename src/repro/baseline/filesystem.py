"""A minimal extent-based file system over the NVMe block device.

This is the indirection layer conventional storage engines pay for and
KAML removes (Section III-A): file page -> logical block address ->
(inside the FTL) physical page.  Every call charges file-system CPU time
and ``fsync`` issues a durability barrier.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.blockdev import NvmeBlockDevice
from repro.sim import Environment


class FileError(Exception):
    """File-system misuse: unknown file, out-of-range page, no space."""


class SimpleFilesystem:
    """Named files, each an extent list of device logical pages."""

    def __init__(self, env: Environment, device: NvmeBlockDevice):
        self.env = env
        self.device = device
        self.costs = device.config.firmware  # link costs live on the device
        self.host_costs = device.config.host
        self._files: Dict[str, List[int]] = {}
        self._next_lpn = 0
        self.fsyncs = 0

    @property
    def page_size(self) -> int:
        return self.device.logical_page_size

    def create(self, name: str, pages: int) -> None:
        """Preallocate a file of ``pages`` logical pages."""
        if name in self._files:
            raise FileError(f"file exists: {name!r}")
        if pages < 1:
            raise FileError("a file needs at least one page")
        if self._next_lpn + pages > self.device.logical_pages:
            raise FileError(
                f"no space for {name!r}: need {pages} pages, "
                f"{self.device.logical_pages - self._next_lpn} free"
            )
        self._files[name] = list(range(self._next_lpn, self._next_lpn + pages))
        self._next_lpn += pages

    def extend(self, name: str, pages: int) -> None:
        extent = self._extent(name)
        if self._next_lpn + pages > self.device.logical_pages:
            raise FileError(f"no space extending {name!r}")
        extent.extend(range(self._next_lpn, self._next_lpn + pages))
        self._next_lpn += pages

    def size_pages(self, name: str) -> int:
        return len(self._extent(name))

    def exists(self, name: str) -> bool:
        return name in self._files

    # -- timed I/O ----------------------------------------------------------

    def read_page(self, name: str, page_index: int, nbytes: int = None) -> Any:
        lpn = self._lpn(name, page_index)
        yield self.env.timeout(self.host_costs.fs_op_us)
        data = yield from self.device.read(lpn, nbytes or self.page_size)
        return data

    def write_page(self, name: str, page_index: int, data: Any, nbytes: int = None) -> Any:
        lpn = self._lpn(name, page_index)
        yield self.env.timeout(self.host_costs.fs_op_us)
        yield from self.device.write(lpn, data, nbytes or self.page_size)

    def fsync(self, name: str) -> Any:
        """Durability barrier: flush command plus device round trip."""
        self._extent(name)
        self.fsyncs += 1
        yield self.env.timeout(self.host_costs.fs_op_us)
        yield from self.device.link.command_overhead()
        yield self.env.timeout(self.host_costs.fsync_us)

    # -- internals -----------------------------------------------------------

    def _extent(self, name: str) -> List[int]:
        try:
            return self._files[name]
        except KeyError:
            raise FileError(f"unknown file: {name!r}") from None

    def _lpn(self, name: str, page_index: int) -> int:
        extent = self._extent(name)
        if not 0 <= page_index < len(extent):
            raise FileError(f"page {page_index} out of range for {name!r}")
        return extent[page_index]
