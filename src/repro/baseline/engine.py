"""The Shore-MT-style storage engine (the paper's baseline).

ACID via ARIES-style WAL + two-phase locking (Section V-A): updates are
applied to buffer-pool pages in place (steal/no-force) with undo images
kept in the transaction; commit forces the log through the transaction's
last LSN — the centralized synchronous flush that caps its throughput.

Locking granularity is a construction parameter: ``RECORD`` (the
configuration the paper calls "Shore-MT with record-level locks") or
``PAGE`` ("page-level locks", the configuration that loses up to 80 %
of its throughput in Figure 9).
"""

from __future__ import annotations

import enum
from typing import Any, Dict, List, Optional, Tuple

from repro.baseline.buffer_pool import BufferPool
from repro.baseline.filesystem import SimpleFilesystem
from repro.baseline.heap_file import HeapFile
from repro.baseline.wal import WriteAheadLog
from repro.blockdev import NvmeBlockDevice
from repro.cache.locks import LockManager, LockMode
from repro.cache.transaction import Transaction, TxnState
from repro.config import ReproConfig
from repro.sim import Environment


class EngineError(Exception):
    """Engine misuse (unknown table, bad transaction state, ...)."""


class LockGranularity(enum.Enum):
    RECORD = "record"
    PAGE = "page"


class _EngineTxn(Transaction):
    """XCB plus the undo chain and last LSN the engine needs."""

    def __init__(self, txn_id: int):
        super().__init__(txn_id)
        self.undo: List[Tuple[str, int, str, Any]] = []  # (table, key, kind, before)
        self.last_lsn = 0
        #: Page-granularity inserts: this txn's private append page per table.
        self.insert_pages: Dict[str, int] = {}


class ShoreMtEngine:
    """begin / read / update / insert / delete / commit / abort."""

    def __init__(
        self,
        env: Environment,
        config: ReproConfig,
        pool_pages: int = 1024,
        granularity: LockGranularity = LockGranularity.RECORD,
        checkpoint_interval_us: Optional[float] = 500_000.0,
        log_pages: int = 4096,
        group_commit: bool = True,
    ):
        self.env = env
        self.config = config
        self.device = NvmeBlockDevice(env, config)
        self.fs = SimpleFilesystem(env, self.device)
        self.wal = WriteAheadLog(env, self.fs, log_pages=log_pages,
                                 group_commit=group_commit)
        self.pool = BufferPool(env, self.fs, pool_pages)
        self.locks = LockManager(env, config.host, records_per_lock=1)
        self.granularity = granularity
        self.tables: Dict[str, HeapFile] = {}
        self._next_txn_id = 1
        self.committed = 0
        self.aborted = 0
        if checkpoint_interval_us is not None:
            env.process(self.pool.checkpointer(checkpoint_interval_us))

    # ------------------------------------------------------------------
    # Schema
    # ------------------------------------------------------------------

    def create_table(self, name: str, pages: int = 256) -> HeapFile:
        if name in self.tables:
            raise EngineError(f"table exists: {name!r}")
        table = HeapFile(self.fs, self.pool, name, pages)
        self.tables[name] = table
        return table

    def table(self, name: str) -> HeapFile:
        try:
            return self.tables[name]
        except KeyError:
            raise EngineError(f"unknown table: {name!r}") from None

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def begin(self) -> _EngineTxn:
        txn = _EngineTxn(self._next_txn_id)
        self._next_txn_id += 1
        txn.begin()
        return txn

    def read(self, txn: _EngineTxn, table_name: str, key: int) -> Any:
        txn.require_active()
        table = self.table(table_name)
        yield from self._lock(txn, table, key, LockMode.SHARED)
        result = yield from table.read(key)
        return result[0] if result is not None else None

    def read_for_update(self, txn: _EngineTxn, table_name: str, key: int) -> Any:
        """Read taking the exclusive lock up front (no S->X upgrade)."""
        txn.require_active()
        table = self.table(table_name)
        yield from self._lock(txn, table, key, LockMode.EXCLUSIVE)
        result = yield from table.read(key)
        return result[0] if result is not None else None

    def update(self, txn: _EngineTxn, table_name: str, key: int, value: Any, size: int) -> Any:
        txn.require_active()
        table = self.table(table_name)
        yield from self._lock(txn, table, key, LockMode.EXCLUSIVE)
        before = yield from table.update(key, value, size)
        txn.undo.append((table_name, key, "update", before))
        txn.last_lsn = yield from self.wal.append(
            dict(
                txn_id=txn.txn_id, kind="update", table=table_name, key=key,
                before=before, after=(value, size), size=size,
            )
        )

    def insert(self, txn: _EngineTxn, table_name: str, key: int, value: Any, size: int) -> Any:
        txn.require_active()
        table = self.table(table_name)
        if self.granularity is LockGranularity.RECORD:
            yield from self.locks.acquire(
                txn, ("r", table_name, key), LockMode.EXCLUSIVE
            )
            rid = yield from table.insert(key, value, size)
        else:
            rid = yield from self._insert_page_locked(txn, table, key, value, size)
        txn.undo.append((table_name, key, "insert", None))
        txn.last_lsn = yield from self.wal.append(
            dict(
                txn_id=txn.txn_id, kind="update", table=table_name, key=key,
                before=None, after=(value, size), size=size,
            )
        )

    def _insert_page_locked(self, txn: _EngineTxn, table: HeapFile,
                            key: int, value: Any, size: int) -> Any:
        """Page-granularity insert: each transaction appends to private
        fresh pages.  The table-append latch is held only while claiming a
        page (latch, not 2PL lock), so insert-vs-update deadlocks between
        fill pages cannot form; the page lock on the private page is
        uncontended by construction."""
        while True:
            page_index = txn.insert_pages.get(table.name)
            if page_index is None:
                yield from self.locks.acquire(
                    txn, ("append", table.name), LockMode.EXCLUSIVE
                )
                page_index = table.claim_fresh_page()
                self.locks.release_one(txn, ("append", table.name))
                yield from self.locks.acquire(
                    txn, ("p", table.name, page_index), LockMode.EXCLUSIVE
                )
                txn.insert_pages[table.name] = page_index
            rid = yield from table.insert_at(page_index, key, value, size)
            if rid is not None:
                return rid
            txn.insert_pages.pop(table.name, None)  # page full: claim another

    def delete(self, txn: _EngineTxn, table_name: str, key: int) -> Any:
        txn.require_active()
        table = self.table(table_name)
        yield from self._lock(txn, table, key, LockMode.EXCLUSIVE)
        before = yield from table.delete(key)
        if before is None:
            return False
        txn.undo.append((table_name, key, "delete", before))
        txn.last_lsn = yield from self.wal.append(
            dict(
                txn_id=txn.txn_id, kind="update", table=table_name, key=key,
                before=before, after=None, size=before[1],
            )
        )
        return True

    def commit(self, txn: _EngineTxn) -> Any:
        """Append the commit record and force the log (the durability
        point — and the baseline's serialization point).

        Read-only transactions wrote nothing, so they commit without
        touching the log (the standard optimization).
        """
        txn.require_active()
        if txn.undo:
            lsn = yield from self.wal.append(dict(txn_id=txn.txn_id, kind="commit"))
            yield from self.wal.flush_to(lsn)
        else:
            yield self.env.timeout(self.config.host.txn_overhead_us)
        txn.mark_committed()
        self.locks.release_all(txn)
        self.committed += 1

    def abort(self, txn: _EngineTxn) -> Any:
        """Undo in reverse order from before images, then log the abort."""
        txn.require_active()
        for table_name, key, kind, before in reversed(txn.undo):
            table = self.table(table_name)
            if kind == "insert":
                yield from table.delete(key)
            elif kind == "update":
                yield from table.update(key, before[0], before[1])
            elif kind == "delete":
                yield from table.insert(key, before[0], before[1])
        yield from self.wal.append(dict(txn_id=txn.txn_id, kind="abort"))
        txn.mark_aborted()
        self.locks.cancel_wait(txn)
        self.locks.release_all(txn)
        self.aborted += 1

    def free(self, txn: _EngineTxn) -> None:
        txn.free()
        txn.undo.clear()
        txn.insert_pages.clear()

    def run_transaction(self, body, max_retries: int = 64) -> Any:
        """begin/commit wrapper with deadlock-abort retry."""
        from repro.cache.locks import DeadlockError

        attempt = 0
        while True:
            txn = self.begin()
            try:
                result = yield from body(txn)
                yield from self.commit(txn)
                self.free(txn)
                return result
            except DeadlockError:
                attempt += 1
                if txn.state is TxnState.ACTIVE:
                    yield from self.abort(txn)
                self.free(txn)
                if attempt > max_retries:
                    raise
                yield self.env.timeout(self.config.host.txn_overhead_us * attempt)

    # ------------------------------------------------------------------
    # Crash / recovery (logical ARIES: undo uncommitted, redo committed)
    # ------------------------------------------------------------------

    def simulate_crash(self) -> None:
        """Lose volatile state: buffer pool frames and the unflushed WAL
        tail.  Disk pages and the flushed log survive."""
        self.pool._frames.clear()
        self.wal.truncate_after_crash()
        self.locks = LockManager(self.env, self.config.host, records_per_lock=1)

    def recover(self) -> Any:
        """Restore every table to the last committed state."""
        for table in self.tables.values():
            yield from table.rebuild_index()
        durable = self.wal.durable_records()
        committed = {r.txn_id for r in durable if r.kind == "commit"}
        finished = committed | {r.txn_id for r in durable if r.kind == "abort"}
        # Undo pass: newest first, for transactions with no outcome record.
        for record in reversed(durable):
            if record.kind != "update" or record.txn_id in finished:
                continue
            table = self.table(record.table)
            yield from self._restore(table, record.key, record.before)
        # Redo pass: oldest first, committed transactions only.
        for record in durable:
            if record.kind != "update" or record.txn_id not in committed:
                continue
            table = self.table(record.table)
            yield from self._restore(table, record.key, record.after)

    def _restore(self, table: HeapFile, key: int, image) -> Any:
        if image is None:
            yield from table.delete(key)
        else:
            yield from table.apply_raw(key, image[0], image[1])

    # ------------------------------------------------------------------

    def _lock(self, txn: _EngineTxn, table: HeapFile, key: int, mode: LockMode) -> Any:
        if self.granularity is LockGranularity.RECORD:
            name = ("r", table.name, key)
        else:
            page_index = table.page_of(key)
            if page_index is None:
                name = ("r", table.name, key)  # absent key: degrade gracefully
            else:
                name = ("p", table.name, page_index)
        yield from self.locks.acquire(txn, name, mode)
