"""Shore-MT-style storage engine — the paper's OLTP/NoSQL comparator.

A conventional engine with the structure the paper attributes to
Shore-MT (Sections V-A, V-D-1): user data and logs live in files on a
file system over a block SSD; durability comes from ARIES-style
write-ahead logging with a centralized log and synchronous flush at
commit; isolation comes from 2PL at record or page granularity; a page
buffer pool caches 8 KB slotted pages; fuzzy checkpointing flushes dirty
pages in the background.

Every layer here is a cost KAML deletes: the file system indirection,
the stacked log (WAL on top of the FTL's log), and the page-granularity
buffering and locking.
"""

from repro.baseline.filesystem import SimpleFilesystem, FileError
from repro.baseline.slotted_page import SlottedPage, PageFullError
from repro.baseline.wal import WriteAheadLog, LogRecord
from repro.baseline.buffer_pool import BufferPool
from repro.baseline.heap_file import HeapFile, RecordId
from repro.baseline.engine import ShoreMtEngine, EngineError, LockGranularity

__all__ = [
    "SimpleFilesystem",
    "FileError",
    "SlottedPage",
    "PageFullError",
    "WriteAheadLog",
    "LogRecord",
    "BufferPool",
    "HeapFile",
    "RecordId",
    "ShoreMtEngine",
    "EngineError",
    "LockGranularity",
]
