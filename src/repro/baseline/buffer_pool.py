"""Page-granular buffer pool over the file system.

Conventional-engine caching: fixed 8 KB frames, LRU replacement,
pin/unpin, dirty writeback, and a background checkpointer that flushes
dirty pages — the "copy dirty data out of the log ... can interfere with
foreground activity" effect the paper describes (Section V-D-1).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Tuple

from repro.baseline.filesystem import SimpleFilesystem
from repro.baseline.slotted_page import SlottedPage
from repro.sim import Environment, SimLock


@dataclass
class PoolStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    checkpoint_writes: int = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class _Frame:
    __slots__ = ("page", "dirty", "pins")

    def __init__(self, page: SlottedPage):
        self.page = page
        self.dirty = False
        self.pins = 0


class BufferPool:
    """LRU pool of slotted pages keyed by (file, page index)."""

    def __init__(self, env: Environment, fs: SimpleFilesystem, capacity_pages: int):
        if capacity_pages < 1:
            raise ValueError("pool needs at least one frame")
        self.env = env
        self.fs = fs
        self.capacity_pages = capacity_pages
        self._frames: "OrderedDict[Tuple[str, int], _Frame]" = OrderedDict()
        self._io_lock = SimLock(env, name="pool.io")
        self.stats = PoolStats()
        self._checkpoint_running = False

    def __len__(self) -> int:
        return len(self._frames)

    # ------------------------------------------------------------------

    def fetch(self, file_name: str, page_index: int, pin: bool = True) -> Any:
        """Return the frame's :class:`SlottedPage`, reading it on a miss.

        Pages absent on disk (never written) materialise as empty pages.
        """
        yield self.env.timeout(self.fs.host_costs.cache_probe_us)
        frame_key = (file_name, page_index)
        frame = self._frames.get(frame_key)
        if frame is not None:
            self.stats.hits += 1
            self._frames.move_to_end(frame_key)
            if pin:
                frame.pins += 1
            return frame.page
        self.stats.misses += 1
        data = yield from self.fs.read_page(file_name, page_index)
        page = data if isinstance(data, SlottedPage) else SlottedPage(self.fs.page_size)
        frame = _Frame(page)
        if pin:
            frame.pins += 1
        self._frames[frame_key] = frame
        yield from self._shrink()
        return page

    def unpin(self, file_name: str, page_index: int, dirty: bool = False) -> None:
        frame = self._frames.get((file_name, page_index))
        if frame is None:
            return
        frame.pins = max(0, frame.pins - 1)
        if dirty:
            frame.dirty = True

    def mark_dirty(self, file_name: str, page_index: int) -> None:
        frame = self._frames.get((file_name, page_index))
        if frame is not None:
            frame.dirty = True

    def flush_all(self) -> Any:
        """Write back every dirty frame (shutdown / test helper)."""
        for frame_key, frame in list(self._frames.items()):
            if frame.dirty:
                yield from self._write_back(frame_key, frame)

    def checkpoint(self) -> Any:
        """One fuzzy-checkpoint pass: write back currently dirty frames.

        Runs in the background; its device writes compete with foreground
        transactions for flash bandwidth.
        """
        if self._checkpoint_running:
            return
        self._checkpoint_running = True
        try:
            dirty = [
                (frame_key, frame)
                for frame_key, frame in list(self._frames.items())
                if frame.dirty
            ]
            for frame_key, frame in dirty:
                if frame.dirty:
                    yield from self._write_back(frame_key, frame)
                    self.stats.checkpoint_writes += 1
        finally:
            self._checkpoint_running = False

    def checkpointer(self, interval_us: float) -> Any:
        """Run as a process: periodic fuzzy checkpoints forever."""
        while True:
            yield self.env.timeout(interval_us)
            yield from self.checkpoint()

    # ------------------------------------------------------------------

    def _write_back(self, frame_key: Tuple[str, int], frame: _Frame) -> Any:
        frame.dirty = False
        snapshot = frame.page.snapshot()
        yield from self.fs.write_page(frame_key[0], frame_key[1], snapshot)
        self.stats.writebacks += 1

    def _shrink(self) -> Any:
        while len(self._frames) > self.capacity_pages:
            victim_key = None
            for frame_key, frame in self._frames.items():
                if frame.pins == 0:
                    victim_key = frame_key
                    break
            if victim_key is None:
                return  # everything pinned; allow temporary overcommit
            frame = self._frames.pop(victim_key)
            self.stats.evictions += 1
            if frame.dirty:
                yield from self._write_back(victim_key, frame)
