"""ARIES-style write-ahead log with a centralized, synchronous flush.

This module is deliberately the baseline's bottleneck, because the paper
identifies it as such (Section V-D-1): "centralized, synchronous logging
is the major bottleneck in most conventional storage engines ... only a
single transaction can acquire the global lock and flush the log at the
same time".

* ``append`` serializes on a global log mutex (LSN assignment + buffer
  copy).
* ``flush_to`` forces the log to the device through a single flusher at
  a time; waiters piggyback on the running flush when their LSN is
  covered (group commit), otherwise they queue for the next cycle.
* Recovery replays committed transactions' redo records in LSN order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

from repro.baseline.filesystem import SimpleFilesystem
from repro.sim import Environment, Gate, SimLock


@dataclass(frozen=True)
class LogRecord:
    """One WAL entry.  ``kind`` is "update" | "commit" | "abort"."""

    lsn: int
    txn_id: int
    kind: str
    table: str = ""
    key: int = -1
    before: Any = None
    after: Any = None
    size: int = 0


class WriteAheadLog:
    """Sequential log file + in-memory tail buffer."""

    LOG_FILE = "__wal__"

    def __init__(self, env: Environment, fs: SimpleFilesystem, log_pages: int = 4096,
                 group_commit: bool = True):
        self.env = env
        self.fs = fs
        self.costs = fs.host_costs
        #: With group commit off, every committer performs its own full
        #: flush+fsync cycle even when a concurrent flush already covered
        #: its LSN (ablation baseline).
        self.group_commit = group_commit
        if not fs.exists(self.LOG_FILE):
            fs.create(self.LOG_FILE, log_pages)
        self._records: List[LogRecord] = []  # full history (recovery source)
        self._next_lsn = 1
        self._buffered_bytes = 0      # bytes appended but not yet flushed
        self._flushed_lsn = 0
        self._buffered_lsn = 0
        self._mutex = SimLock(env, name="wal.mutex")
        self._flush_lock = SimLock(env, name="wal.flush")
        self._flush_done = Gate(env, name="wal.flushed")
        self._log_head_page = 0
        self.flush_cycles = 0
        self.appends = 0

    @property
    def flushed_lsn(self) -> int:
        return self._flushed_lsn

    # ------------------------------------------------------------------

    def append(self, record_fields: Dict[str, Any]) -> Any:
        """Append a record under the global log mutex; returns its LSN."""
        yield self._mutex.acquire(owner="append")
        try:
            yield self.env.timeout(
                self.costs.wal_record_us
                + record_fields.get("size", 0) / self.costs.copy_bytes_per_us
            )
            lsn = self._next_lsn
            self._next_lsn += 1
            record = LogRecord(lsn=lsn, **record_fields)
            self._records.append(record)
            self._buffered_lsn = lsn
            # Update records log before+after images; control records are
            # small and fixed.
            self._buffered_bytes += 64 + 2 * record.size
            self.appends += 1
            return lsn
        finally:
            self._mutex.release()

    def flush_to(self, lsn: int) -> Any:
        """Force the log through ``lsn`` (commit durability point).

        Single flusher; everyone else either returns immediately (already
        durable) or waits for the flusher covering their LSN.
        """
        flushed_once = False
        while self._flushed_lsn < lsn or (not self.group_commit and not flushed_once):
            if self._flush_lock.locked:
                yield self._flush_done.wait()
                if not self.group_commit:
                    continue  # piggybacking disabled: take our own turn
                continue
            yield self._flush_lock.acquire(owner="flush")
            try:
                if self.group_commit and self._flushed_lsn >= lsn:
                    continue
                flushed_once = True
                target_lsn = self._buffered_lsn
                nbytes = self._buffered_bytes
                self._buffered_bytes = 0
                pages = max(1, -(-nbytes // self.fs.page_size))
                for _ in range(pages):
                    yield from self.fs.write_page(
                        self.LOG_FILE, self._log_head_page, ("wal", target_lsn)
                    )
                    self._log_head_page = (
                        self._log_head_page + 1
                    ) % self.fs.size_pages(self.LOG_FILE)
                yield from self.fs.fsync(self.LOG_FILE)
                self._flushed_lsn = target_lsn
                self.flush_cycles += 1
            finally:
                self._flush_lock.release()
                self._flush_done.fire()

    # ------------------------------------------------------------------
    # Recovery (redo pass over committed transactions)
    # ------------------------------------------------------------------

    def durable_records(self) -> List[LogRecord]:
        """Records that survived a crash: everything flushed."""
        return [r for r in self._records if r.lsn <= self._flushed_lsn]

    def committed_redo_plan(self) -> List[LogRecord]:
        """Update records of committed transactions, in LSN order."""
        durable = self.durable_records()
        committed = {r.txn_id for r in durable if r.kind == "commit"}
        return [r for r in durable if r.kind == "update" and r.txn_id in committed]

    def truncate_after_crash(self) -> None:
        """Drop the unflushed tail (it never reached the device)."""
        self._records = self.durable_records()
        self._next_lsn = self._flushed_lsn + 1
        self._buffered_lsn = self._flushed_lsn
        self._buffered_bytes = 0
