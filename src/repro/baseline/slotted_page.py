"""Slotted 8 KB pages: the baseline engine's record container."""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

#: Per-page header plus per-slot directory entry, in bytes.
PAGE_HEADER_BYTES = 32
SLOT_ENTRY_BYTES = 8


class PageFullError(Exception):
    """No room for another record on this page."""


class SlottedPage:
    """Records packed into a fixed-size page with a slot directory.

    The slot index is stable for a record's lifetime (record ids are
    (page, slot) pairs), deletes leave holes that inserts reuse.
    """

    def __init__(self, page_size: int):
        self.page_size = page_size
        self._slots: List[Optional[Tuple[Any, int]]] = []  # (value, size) or None
        self._used = PAGE_HEADER_BYTES

    @property
    def free_bytes(self) -> int:
        return self.page_size - self._used

    @property
    def record_count(self) -> int:
        return sum(1 for slot in self._slots if slot is not None)

    def fits(self, size: int) -> bool:
        return size + SLOT_ENTRY_BYTES <= self.free_bytes

    def insert(self, value: Any, size: int) -> int:
        """Add a record; returns its slot number."""
        if size <= 0:
            raise ValueError("record size must be positive")
        if not self.fits(size):
            raise PageFullError(
                f"record of {size} B does not fit ({self.free_bytes} B free)"
            )
        self._used += size + SLOT_ENTRY_BYTES
        for slot, existing in enumerate(self._slots):
            if existing is None:
                self._slots[slot] = (value, size)
                return slot
        self._slots.append((value, size))
        return len(self._slots) - 1

    def read(self, slot: int) -> Tuple[Any, int]:
        record = self._slot(slot)
        if record is None:
            raise KeyError(f"slot {slot} is empty")
        return record

    def update(self, slot: int, value: Any, size: int) -> None:
        old = self._slot(slot)
        if old is None:
            raise KeyError(f"slot {slot} is empty")
        delta = size - old[1]
        if delta > self.free_bytes:
            raise PageFullError("grown record does not fit in place")
        self._used += delta
        self._slots[slot] = (value, size)

    def delete(self, slot: int) -> None:
        old = self._slot(slot)
        if old is None:
            raise KeyError(f"slot {slot} is empty")
        self._used -= old[1] + SLOT_ENTRY_BYTES
        self._slots[slot] = None

    def _slot(self, slot: int) -> Optional[Tuple[Any, int]]:
        if not 0 <= slot < len(self._slots):
            raise KeyError(f"slot {slot} out of range")
        return self._slots[slot]

    def iter_slots(self):
        """Yield ``(slot, value, size)`` for every occupied slot."""
        for slot, record in enumerate(self._slots):
            if record is not None:
                yield slot, record[0], record[1]

    def snapshot(self) -> "SlottedPage":
        """A deep-enough copy for buffer-pool writeback images."""
        clone = SlottedPage(self.page_size)
        clone._slots = list(self._slots)
        clone._used = self._used
        return clone
