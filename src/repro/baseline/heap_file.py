"""Heap files: slotted pages plus the application-level key index.

Conventional engines must map application keys to record ids themselves
(Section III-A): here a hash index from key to RID = (page, slot).  The
engine charges index CPU time per probe; KAML's point is that this whole
layer (and the file system under it) collapses into the SSD's own
mapping table.
"""

from __future__ import annotations

from typing import Any, Dict, NamedTuple, Optional

from repro.baseline.buffer_pool import BufferPool
from repro.baseline.filesystem import SimpleFilesystem
from repro.baseline.slotted_page import PageFullError


class RecordId(NamedTuple):
    page_index: int
    slot: int


class HeapFile:
    """A table: one file of slotted pages + key -> RID index.

    Slots store ``(key, value)`` so the index is rebuildable by scanning
    the file after a crash (the disk pages are the source of truth).
    """

    def __init__(
        self,
        fs: SimpleFilesystem,
        pool: BufferPool,
        name: str,
        pages: int,
    ):
        self.fs = fs
        self.pool = pool
        self.name = name
        fs.create(name, pages)
        self._index: Dict[int, RecordId] = {}
        self._fill_page = 0  # first page that might have room
        self._append_page = None  # high-water mark for claim_fresh_page

    def __len__(self) -> int:
        return len(self._index)

    @property
    def pages(self) -> int:
        return self.fs.size_pages(self.name)

    def rid_of(self, key: int) -> Optional[RecordId]:
        return self._index.get(key)

    # ------------------------------------------------------------------
    # Timed operations (drive with ``yield from``)
    # ------------------------------------------------------------------

    def insert(self, key: int, value: Any, size: int) -> Any:
        """Place a record and index it; returns its RID."""
        if key in self._index:
            raise KeyError(f"duplicate key {key} in {self.name!r}")
        yield self.fs.env.timeout(self.fs.host_costs.index_level_us)
        page_index = self._fill_page
        while True:
            if page_index >= self.pages:
                self.fs.extend(self.name, max(16, self.pages // 4))
            page = yield from self.pool.fetch(self.name, page_index)
            try:
                if page.fits(size):
                    slot = page.insert((key, value), size)
                    self.pool.unpin(self.name, page_index, dirty=True)
                    rid = RecordId(page_index, slot)
                    self._index[key] = rid
                    return rid
            except PageFullError:
                pass
            self.pool.unpin(self.name, page_index)
            if page_index == self._fill_page:
                self._fill_page += 1
            page_index += 1

    def read(self, key: int) -> Any:
        """Return ``(value, size, rid)`` or None."""
        yield self.fs.env.timeout(self.fs.host_costs.index_level_us)
        rid = self._index.get(key)
        if rid is None:
            return None
        page = yield from self.pool.fetch(self.name, rid.page_index)
        try:
            stored, size = page.read(rid.slot)
        finally:
            self.pool.unpin(self.name, rid.page_index)
        return stored[1], size, rid

    def update(self, key: int, value: Any, size: int) -> Any:
        """In-place update; returns the before image ``(value, size)``."""
        yield self.fs.env.timeout(self.fs.host_costs.index_level_us)
        rid = self._index.get(key)
        if rid is None:
            raise KeyError(f"unknown key {key} in {self.name!r}")
        page = yield from self.pool.fetch(self.name, rid.page_index)
        try:
            stored, old_size = page.read(rid.slot)
            page.update(rid.slot, (key, value), size)
        finally:
            self.pool.unpin(self.name, rid.page_index, dirty=True)
        return stored[1], old_size

    def delete(self, key: int) -> Any:
        """Remove a record; returns its before image or None."""
        yield self.fs.env.timeout(self.fs.host_costs.index_level_us)
        rid = self._index.pop(key, None)
        if rid is None:
            return None
        page = yield from self.pool.fetch(self.name, rid.page_index)
        try:
            stored, size = page.read(rid.slot)
            page.delete(rid.slot)
        finally:
            self.pool.unpin(self.name, rid.page_index, dirty=True)
        self._fill_page = min(self._fill_page, rid.page_index)
        return stored[1], size

    def apply_raw(self, key: int, value: Any, size: int) -> Any:
        """Recovery redo: upsert without WAL or locking."""
        if key in self._index:
            yield from self.update(key, value, size)
        else:
            yield from self.insert(key, value, size)

    def page_of(self, key: int) -> Optional[int]:
        """Which page holds a key (for page-granularity locking)."""
        rid = self._index.get(key)
        return rid.page_index if rid else None

    def claim_fresh_page(self) -> int:
        """Hand out a never-used page (page-granularity insert path).

        Page-locking engines give each transaction private append pages so
        concurrent inserters do not fight over fill-page locks; the cost
        is internal fragmentation, which is part of why page granularity
        loses (Figure 9).
        """
        if self._append_page is None:
            self._append_page = self._fill_page
        page_index = max(self._append_page, self._fill_page)
        while page_index >= self.pages:
            self.fs.extend(self.name, max(16, self.pages // 4))
        self._append_page = page_index + 1
        return page_index

    def insert_at(self, page_index: int, key: int, value: Any, size: int) -> Any:
        """Insert into a specific (caller-locked) page; returns the RID or
        None when the page has no room."""
        if key in self._index:
            raise KeyError(f"duplicate key {key} in {self.name!r}")
        page = yield from self.pool.fetch(self.name, page_index)
        try:
            if not page.fits(size):
                return None
            slot = page.insert((key, value), size)
        finally:
            self.pool.unpin(self.name, page_index, dirty=True)
        rid = RecordId(page_index, slot)
        self._index[key] = rid
        return rid

    def rebuild_index(self) -> Any:
        """Reconstruct the key index by scanning disk pages (crash path)."""
        self._index.clear()
        self._fill_page = 0
        for page_index in range(self.pages):
            page = yield from self.pool.fetch(self.name, page_index)
            try:
                for slot, stored, _size in page.iter_slots():
                    self._index[stored[0]] = RecordId(page_index, slot)
            finally:
                self.pool.unpin(self.name, page_index)
