"""KL-RES001: pins and NVRAM reservations release on every path, across
call boundaries.

Two counted resources keep the firmware honest:

* **block pins** — ``self._pin(block)`` / ``self._unpin(block)`` guard
  flash locations against GC erase; a leaked pin wedges GC forever
  (``wait_unpinned`` never drains).
* **NVRAM reservations** — ``self.nvram.reserve(...)`` /
  ``self.nvram.release(handle)`` bound the persistent staging buffer; a
  leaked handle is permanent back-pressure.

The old heuristic balanced acquire/release inside one function and went
blind the moment a helper did the releasing.  This pass is
interprocedural: every function gets a *net* resource effect, computed
bottom-up over the project call graph (spawn edges included — handing a
handle to a spawned completion process transfers ownership, exactly the
``put``/``_complete_put`` split), and each explicit ``return`` is
checked against the definite balance at that point.

Deliberate imprecision, tuned against this codebase's idioms:

* **Optimistic releases** — a release on *any* path (an ``if`` arm, an
  ``except`` handler) counts, mirroring KL-LCK001; conditional cleanup
  suppresses the flag rather than spamming every branch.
* **``finally`` credit** — releases in a ``finally`` block count toward
  returns inside the corresponding ``try`` body.
* **Uniform producers** — a function whose every exit holds the same
  positive balance is a *producer* by contract (``_pin`` itself); the
  leak, if any, is flagged in a caller that drops the net.
* **Conditional producers** — ``_pin_location`` returns either a pinned
  location or ``(None, None)``; its callsites contribute no definite
  count and its own body is exempt.  Callers that drop its *successful*
  result are the runtime sanitizer's catch, not this rule's.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis_tools.core import (
    TOOLING_SUBPACKAGES,
    Violation,
    receiver_text,
    register_pass,
    walk_own,
)
from repro.analysis_tools.graph import FunctionInfo, Project, iter_project_functions

PIN_ACQUIRE = {"_pin", "pin_block"}
PIN_RELEASE = {"_unpin", "unpin_block"}
#: Functions that conditionally return an acquired resource; callsites
#: count as zero definite and their own bodies are exempt.
CONDITIONAL_PRODUCERS = {"_pin_location"}

KINDS = ("pin", "nvram")

Pos = Tuple[int, int]


@dataclass
class _Event:
    """One definite resource delta at a source position."""

    pos: Pos
    kind: str       # "pin" | "nvram"
    delta: int
    desc: str       # "self._pin()" / "net of _helper()" ...


def _own_events(info: FunctionInfo) -> List[_Event]:
    """Acquire/release deltas from the function's own body."""
    events: List[_Event] = []
    for node in walk_own(info.func):
        if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
            continue
        method = node.func.attr
        receiver = receiver_text(node.func.value) or ""
        pos = (node.lineno, node.col_offset)
        if method in PIN_ACQUIRE:
            events.append(_Event(pos, "pin", +1, f"{receiver}.{method}()"))
        elif method in PIN_RELEASE:
            events.append(_Event(pos, "pin", -1, f"{receiver}.{method}()"))
        elif method == "reserve" and "nvram" in receiver.lower():
            events.append(_Event(pos, "nvram", +1, f"{receiver}.reserve()"))
        elif method == "release" and "nvram" in receiver.lower():
            events.append(_Event(pos, "nvram", -1, f"{receiver}.release()"))
    events.sort(key=lambda e: e.pos)
    return events


class _Nets:
    """Bottom-up per-function net resource effect over the call graph."""

    def __init__(self, project: Project):
        self.project = project
        self._memo: Dict[str, Dict[str, int]] = {}
        self._stack: Set[str] = set()

    def net(self, uid: str) -> Dict[str, int]:
        cached = self._memo.get(uid)
        if cached is not None:
            return cached
        if uid in self._stack:  # recursion: assume balanced
            return {kind: 0 for kind in KINDS}
        self._stack.add(uid)
        try:
            info = self.project.functions[uid]
            totals = {kind: 0 for kind in KINDS}
            if info.func.name in CONDITIONAL_PRODUCERS:
                self._memo[uid] = totals
                return totals
            for event in _own_events(info):
                totals[event.kind] += event.delta
            for site in self.project.call_edges.get(uid, ()):  # noqa: B007
                callee = self.project.functions[site.callee]
                if callee.func.name in CONDITIONAL_PRODUCERS:
                    continue
                if self._is_resource_primitive(callee):
                    continue  # the callsite itself was the event
                for kind, value in self.net(site.callee).items():
                    totals[kind] += value
            self._memo[uid] = totals
            return totals
        finally:
            self._stack.discard(uid)

    @staticmethod
    def _is_resource_primitive(info: FunctionInfo) -> bool:
        return info.func.name in (PIN_ACQUIRE | PIN_RELEASE)


def _call_events(project: Project, nets: _Nets, info: FunctionInfo) -> List[_Event]:
    """Callee net effects, as events at the callsite position."""
    events: List[_Event] = []
    for site in project.call_edges.get(info.uid, ()):  # noqa: B007
        callee = project.functions[site.callee]
        if callee.func.name in CONDITIONAL_PRODUCERS:
            continue
        if nets._is_resource_primitive(callee):
            continue
        for kind, value in sorted(nets.net(site.callee).items()):
            if value != 0:
                verb = "spawns" if site.spawn else "calls"
                events.append(
                    _Event(
                        (site.line, site.col),
                        kind,
                        value,
                        f"{verb} {callee.display} (net {value:+d} {kind})",
                    )
                )
    return events


def _finally_spans(func: ast.FunctionDef) -> List[Tuple[Pos, Pos, Pos]]:
    """(try-body start, finally start, finally end) for each try/finally."""
    spans = []
    for node in walk_own(func):
        if isinstance(node, ast.Try) and node.finalbody:
            body_start = (node.body[0].lineno, node.body[0].col_offset)
            final_start = (node.finalbody[0].lineno, node.finalbody[0].col_offset)
            end_line = getattr(node, "end_lineno", None) or node.finalbody[-1].lineno
            spans.append((body_start, final_start, (end_line + 1, 0)))
    return spans


def _balance_at(
    events: List[_Event],
    spans: List[Tuple[Pos, Pos, Pos]],
    pos: Pos,
) -> Dict[str, int]:
    """Definite resource balance when returning at ``pos``."""
    totals = {kind: 0 for kind in KINDS}
    pending_finally: List[Tuple[Pos, Pos]] = [
        (final_start, final_end)
        for body_start, final_start, final_end in spans
        if body_start <= pos < final_start
    ]
    for event in events:
        runs = event.pos < pos or any(
            start <= event.pos < end for start, end in pending_finally
        )
        if runs:
            totals[event.kind] += event.delta
    return totals


@register_pass
def res001_resource_pairing(project: Project) -> List[Violation]:
    """KL-RES001: no path may exit holding an unaccounted pin/reservation."""
    nets = _Nets(project)
    findings: List[Violation] = []
    for info in iter_project_functions(project):
        if info.module.subpackage in TOOLING_SUBPACKAGES:
            continue
        if info.func.name in CONDITIONAL_PRODUCERS:
            continue
        if nets._is_resource_primitive(info):
            continue
        events = sorted(
            _own_events(info) + _call_events(project, nets, info),
            key=lambda e: e.pos,
        )
        if not any(event.delta > 0 for event in events):
            continue
        spans = _finally_spans(info.func)
        # A return's own value expression runs before the exit (e.g.
        # `return env.process(self._complete_put(...))` hands the handle
        # off), so the exit position is the *end* of the statement.
        exits: List[Tuple[Pos, str]] = [
            ((getattr(node, "end_lineno", None) or node.lineno, 10**6), "return")
            for node in walk_own(info.func)
            if isinstance(node, ast.Return)
        ]
        last = info.func.body[-1]
        if not isinstance(last, (ast.Return, ast.Raise)):
            end_line = getattr(info.func, "end_lineno", None) or last.lineno
            exits.append(((end_line + 1, 0), "fall-through"))
        exits.sort()
        balances = [_balance_at(events, spans, pos) for pos, _kind in exits]
        for kind in KINDS:
            values = [balance[kind] for balance in balances]
            if not values or max(values) <= 0:
                continue
            if min(values) == max(values):
                continue  # uniform producer: callers account for the net
            for (pos, exit_kind), balance in zip(exits, balances):
                if balance[kind] <= 0:
                    continue
                acquired = [
                    event.desc
                    for event in events
                    if event.kind == kind and event.delta > 0 and event.pos < pos
                ]
                source = acquired[0] if acquired else "an earlier acquire"
                findings.append(
                    Violation(
                        "KL-RES001",
                        str(info.path),
                        pos[0] if exit_kind == "return" else pos[0] - 1,
                        0,
                        f"`{info.display}` exits here holding "
                        f"{balance[kind]} unreleased {kind} "
                        f"(from {source}); release it, hand it to a "
                        "completion process, or make every exit uniform",
                        trace=(info.display,),
                    )
                )
    return findings
