"""Determinism lints: KL-DET001 (wall clock), KL-DET002 (global random),
KL-DET003 (set-order iteration).

The perf gate and every ``to_json`` artifact comparison depend on
identical runs producing identical output; these rules remove the three
classic leak paths — wall-clock reads, the process-global RNG, and
hash-order-dependent iteration.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.analysis_tools.core import (
    LintModule,
    TOOLING_SUBPACKAGES,
    Violation,
    dotted_name,
    register_pass,
)
from repro.analysis_tools.graph import Project

#: Dotted-call suffixes that read the host clock.
_WALLCLOCK_SUFFIXES = (
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.localtime",
    "time.ctime",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
)

#: Names importable from ``time``/``datetime`` that read the host clock.
_WALLCLOCK_IMPORTS = {
    "time": {"time", "time_ns", "monotonic", "perf_counter", "process_time"},
    "datetime": set(),  # datetime.datetime is caught at the call site
}


def _matches_wallclock(dotted: str) -> bool:
    return any(
        dotted == suffix or dotted.endswith("." + suffix)
        for suffix in _WALLCLOCK_SUFFIXES
    )


@register_pass
def det001_wall_clock(project: Project) -> List[Violation]:
    """KL-DET001: sim/firmware code must not read the host clock.

    All timing flows from ``Environment.now``; the one sanctioned
    boundary is the allowlisted ``wallclock()`` helper in
    ``repro.harness.reporting``.
    """
    modules = project.modules
    findings = []
    for module in modules:
        if module.subpackage in TOOLING_SUBPACKAGES:
            continue
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted is not None and _matches_wallclock(dotted):
                    findings.append(
                        Violation(
                            "KL-DET001",
                            str(module.path),
                            node.lineno,
                            node.col_offset,
                            f"wall-clock read `{dotted}()`; use sim time "
                            "(env.now) or harness.reporting.wallclock()",
                        )
                    )
            elif isinstance(node, ast.ImportFrom) and node.module in _WALLCLOCK_IMPORTS:
                banned = _WALLCLOCK_IMPORTS[node.module]
                for alias in node.names:
                    if alias.name in banned:
                        findings.append(
                            Violation(
                                "KL-DET001",
                                str(module.path),
                                node.lineno,
                                node.col_offset,
                                f"imports wall-clock `{node.module}.{alias.name}`",
                            )
                        )
    return findings


@register_pass
def det002_global_random(project: Project) -> List[Violation]:
    """KL-DET002: only injected, seeded ``random.Random`` instances.

    The module-level functions share one process-global generator whose
    state depends on import order and every other caller — a seed leak
    across otherwise-independent experiments.
    """
    modules = project.modules
    findings = []
    for module in modules:
        if module.subpackage in TOOLING_SUBPACKAGES:
            continue
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if (
                    dotted is not None
                    and dotted.startswith("random.")
                    and dotted not in ("random.Random", "random.SystemRandom")
                ):
                    findings.append(
                        Violation(
                            "KL-DET002",
                            str(module.path),
                            node.lineno,
                            node.col_offset,
                            f"module-level `{dotted}()`; inject a seeded "
                            "random.Random instance instead",
                        )
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name not in ("Random", "SystemRandom"):
                        findings.append(
                            Violation(
                                "KL-DET002",
                                str(module.path),
                                node.lineno,
                                node.col_offset,
                                f"imports `random.{alias.name}` (global RNG state)",
                            )
                        )
    return findings


# ----------------------------------------------------------------------
# KL-DET003: iteration over set-typed values
# ----------------------------------------------------------------------


def _is_set_expr(node: ast.AST, set_names: Set[str]) -> Optional[str]:
    """Describe why an expression is set-typed, or None."""
    if isinstance(node, ast.Set):
        return "set literal"
    if isinstance(node, ast.SetComp):
        return "set comprehension"
    if isinstance(node, ast.Call):
        dotted = dotted_name(node.func)
        if dotted in ("set", "frozenset"):
            return f"{dotted}(...) call"
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "union", "intersection", "difference", "symmetric_difference"
        ):
            return f".{node.func.attr}() result"
    if isinstance(node, ast.Name) and node.id in set_names:
        return f"local `{node.id}` assigned from a set expression"
    return None


def _collect_set_locals(func: ast.AST) -> Set[str]:
    """Names assigned a syntactic set expression anywhere in ``func``."""
    names: Set[str] = set()
    for node in ast.walk(func):
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        else:
            continue
        if _is_set_expr(value, set()) is None:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


@register_pass
def det003_set_iteration(project: Project) -> List[Violation]:
    """KL-DET003: no iteration over set-typed expressions.

    Set iteration order depends on element hashes (salted for strings),
    so a ``for`` over a set can reorder flash programs, lock grants, or
    report rows between runs.  Iterate ``sorted(the_set)`` instead.
    Detection is syntactic plus single-function local inference; sets
    that cross function boundaries are the reviewer's job.
    """
    modules = project.modules
    findings = []
    for module in modules:
        if module.subpackage in TOOLING_SUBPACKAGES:
            continue
        scopes = [module.tree] + [
            node
            for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for scope in scopes:
            set_names = _collect_set_locals(scope)
            for node in ast.iter_child_nodes(scope):
                findings.extend(
                    _scan_iterations(module, node, set_names, top=scope)
                )
    return findings


def _scan_iterations(
    module: LintModule, root: ast.AST, set_names: Set[str], top: ast.AST
) -> List[Violation]:
    findings = []
    stack = [root]
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not top:
            continue  # nested function: scanned with its own locals
        iter_exprs = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iter_exprs.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            iter_exprs.extend(gen.iter for gen in node.generators)
        for expr in iter_exprs:
            reason = _is_set_expr(expr, set_names)
            if reason is not None:
                findings.append(
                    Violation(
                        "KL-DET003",
                        str(module.path),
                        expr.lineno,
                        expr.col_offset,
                        f"iterates a set ({reason}); wrap in sorted(...) "
                        "for a deterministic order",
                    )
                )
        stack.extend(ast.iter_child_nodes(node))
    return findings
