"""Forward dataflow over one function: shared-attribute reads and writes.

The engine the KL-RACE001 pass runs on every function a sim process can
reach.  It answers two questions about ``self.*``-style shared state:

* **Cross-yield stale reads** — a local picked up from a shared
  attribute (``loc = self.mapping[key]``), a ``yield`` (the sim
  scheduler may run other processes), then a use of the stale local.
  Between the load and the use the attribute may have been mutated by
  another process; synchronous-blocks-are-atomic does not protect a
  value carried *across* a yield.
* **Attribute writes** — assignments, aug-assignments, deletes and
  known mutator-method calls (``.pop``/``.append``/...) against an
  attribute whose owner class the project resolver can name.

Both are reported with the ``SimLock`` sites held at the access, so the
race pass can discharge pairs protected by a common latch.

The walk is positional rather than a full CFG: events (loads, kills,
yields, uses, writes) are collected in source order and windows are
compared by position.  For linting generators — short functions, mostly
straight-line between yields — this matches execution order closely
enough, and mismatches err toward *missing* exotic flows rather than
inventing them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.analysis_tools.core import dotted_name, walk_own
from repro.analysis_tools.graph import FunctionInfo, Project

#: Method names that mutate their receiver in place.
MUTATOR_METHODS = {
    "add",
    "append",
    "clear",
    "discard",
    "extend",
    "insert",
    "pop",
    "popitem",
    "remove",
    "setdefault",
    "update",
}

Pos = Tuple[int, int]


@dataclass(frozen=True)
class AttrRead:
    """A shared-attribute value used after crossing at least one yield."""

    key: str            # "OwnerClass.attr"
    var: str            # the local carrying the stale value
    load_line: int
    load_col: int
    use_line: int
    use_col: int
    locks: FrozenSet[str]   # lock sites held across the load→use window


@dataclass(frozen=True)
class AttrWrite:
    """A mutation of a shared attribute."""

    key: str
    line: int
    col: int
    locks: FrozenSet[str]
    desc: str           # "assignment", ".pop()", "del", ...


@dataclass
class FlowSummary:
    """What one function does to resolvable shared attributes."""

    reads: List[AttrRead]
    writes: List[AttrWrite]


def _attr_key(project: Project, info: FunctionInfo, node: ast.AST) -> Optional[str]:
    """``OwnerClass.attr`` for an attribute (or subscripted-attribute)
    expression whose base the resolver can type; None otherwise."""
    if isinstance(node, ast.Subscript):
        node = node.value
    if not isinstance(node, ast.Attribute):
        return None
    base = dotted_name(node.value)
    owner = project.resolve_attr_base(info, base)
    if owner is None:
        return None
    return f"{owner}.{node.attr}"


def analyze_function(project: Project, info: FunctionInfo) -> FlowSummary:
    """Collect cross-yield attribute reads and attribute writes."""
    loads: List[Tuple[Pos, str, str]] = []      # (pos, var, key)
    kills: Dict[str, List[Pos]] = {}            # var -> store positions
    uses: Dict[str, List[Pos]] = {}             # var -> load positions
    guards: Dict[Tuple[str, str], List[Pos]] = {}   # (var, key) -> guard positions
    guard_uses: set = set()                     # (var, pos) consumed by guards
    yields: List[Pos] = []
    writes: List[AttrWrite] = []

    nodes = sorted(walk_own(info.func), key=lambda n: (
        getattr(n, "lineno", 0), getattr(n, "col_offset", 0)))

    # Guard comparisons first: `if self.epoch != epoch:` compares the
    # carried local against a *fresh* load of the same attribute — that
    # is the revalidation idiom itself (the crash-epoch guard, the
    # pin-then-recheck pattern), so the compare is not a stale use and
    # everything downstream of it starts a freshly-validated window.
    for node in nodes:
        if not isinstance(node, ast.Compare):
            continue
        sides = [node.left] + list(node.comparators)
        names = [s for s in sides if isinstance(s, ast.Name) and isinstance(s.ctx, ast.Load)]
        for side in sides:
            key = _attr_key(project, info, side)
            if key is None:
                continue
            for name in names:
                pos = (name.lineno, name.col_offset)
                guards.setdefault((name.id, key), []).append(pos)
                guard_uses.add((name.id, pos))

    for node in nodes:
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            yields.append((node.lineno, node.col_offset))
        elif isinstance(node, ast.Name):
            pos = (node.lineno, node.col_offset)
            if isinstance(node.ctx, ast.Store):
                kills.setdefault(node.id, []).append(pos)
            elif isinstance(node.ctx, ast.Load) and (node.id, pos) not in guard_uses:
                uses.setdefault(node.id, []).append(pos)
        elif isinstance(node, ast.Assign):
            if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
                key = _attr_key(project, info, node.value)
                if key is not None:
                    loads.append(
                        ((node.lineno, node.col_offset), node.targets[0].id, key)
                    )
            for target in node.targets:
                _record_attr_store(project, info, target, writes, "assignment")
        elif isinstance(node, ast.AugAssign):
            _record_attr_store(project, info, node.target, writes, "aug-assignment")
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                _record_attr_store(project, info, target, writes, "del")
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in MUTATOR_METHODS:
                key = _attr_key(project, info, node.func.value)
                if key is not None:
                    writes.append(
                        AttrWrite(
                            key=key,
                            line=node.lineno,
                            col=node.col_offset,
                            locks=frozenset(),
                            desc=f".{node.func.attr}()",
                        )
                    )

    timeline = project.lock_timeline(info)
    reads = _cross_yield_reads(loads, kills, uses, guards, yields, timeline)
    writes = [
        AttrWrite(
            key=w.key,
            line=w.line,
            col=w.col,
            locks=timeline.held_at(w.line, w.col),
            desc=w.desc,
        )
        for w in writes
    ]
    return FlowSummary(reads=reads, writes=writes)


def _record_attr_store(
    project: Project,
    info: FunctionInfo,
    target: ast.AST,
    writes: List[AttrWrite],
    desc: str,
) -> None:
    if isinstance(target, (ast.Attribute, ast.Subscript)):
        key = _attr_key(project, info, target)
        if key is not None:
            writes.append(
                AttrWrite(
                    key=key,
                    line=target.lineno,
                    col=target.col_offset,
                    locks=frozenset(),
                    desc=desc,
                )
            )
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            _record_attr_store(project, info, element, writes, desc)


def _cross_yield_reads(
    loads: List[Tuple[Pos, str, str]],
    kills: Dict[str, List[Pos]],
    uses: Dict[str, List[Pos]],
    guards: Dict[Tuple[str, str], List[Pos]],
    yields: List[Pos],
    timeline,
) -> List[AttrRead]:
    """Uses of a tracked local with a yield since its last fresh point.

    Fresh points are the original attribute load plus every guard
    comparison of the same (var, key) pair: a guard re-checks the local
    against current state, so only a yield *after* the latest fresh
    point makes a subsequent use stale.
    """
    reads: List[AttrRead] = []
    seen = set()
    for load_pos, var, key in loads:
        fresh_points = [load_pos] + list(guards.get((var, key), []))
        for use_pos in sorted(uses.get(var, ())):
            if use_pos <= load_pos:
                continue
            fresh = max(p for p in fresh_points if p < use_pos)
            # A reassignment after the fresh point retires the tracked
            # value (same-line stores are the use's own statement).
            killed = any(
                fresh < kill_pos <= use_pos and kill_pos[0] != use_pos[0]
                for kill_pos in kills.get(var, ())
            )
            if killed:
                break
            if not any(fresh < y < use_pos for y in yields):
                continue
            dedup = (key, var, load_pos)
            if dedup in seen:
                break
            seen.add(dedup)
            # Protected only by locks held at the load AND still at the use.
            locks = timeline.held_at(*load_pos) & timeline.held_at(*use_pos)
            reads.append(
                AttrRead(
                    key=key,
                    var=var,
                    load_line=load_pos[0],
                    load_col=load_pos[1],
                    use_line=use_pos[0],
                    use_col=use_pos[1],
                    locks=locks,
                )
            )
            break
    return reads
