"""KL-CTX001: TraceContext propagation lint.

PR 3 threaded a ``TraceContext`` by argument through the stack; the
span-leak class it fixed by hand (a layer holding a ``ctx`` but calling
a ctx-accepting callee without it, silently re-rooting the trace) is
what this rule catches mechanically.

Matching is conservative: a callsite is only checked when the receiver
name maps to a class known (from the same lint run) to define the called
method with a ``ctx`` parameter.  Receiver aliases are derived from the
class name (``KamlLog`` -> ``kaml_log``/``log``/``logs``), so renamed
receivers escape the rule — reviewers still own those.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis_tools.core import (
    LintModule,
    Violation,
    dotted_name,
    iter_functions,
    receiver_text,
    register_pass,
    walk_own,
)
from repro.analysis_tools.graph import Project, class_aliases

CTX_PARAM = "ctx"

#: The alias resolver now lives in the call-graph module (the project
#: resolver grew out of this rule); kept as a local name for callers.
_aliases = class_aliases


def _params(func: ast.FunctionDef) -> List[str]:
    args = func.args
    names = [a.arg for a in args.posonlyargs] if hasattr(args, "posonlyargs") else []
    names += [a.arg for a in args.args]
    names += [a.arg for a in args.kwonlyargs]
    return names


def _accepting_defs(modules: List[LintModule]) -> Dict[str, Set[str]]:
    """method name -> class names defining it with a ``ctx`` parameter."""
    accepting: Dict[str, Set[str]] = {}
    for module in modules:
        for class_name, func in iter_functions(module.tree):
            if class_name is None:
                continue
            if CTX_PARAM in _params(func):
                accepting.setdefault(func.name, set()).add(class_name)
    return accepting


def _ctx_in_scope(func: ast.FunctionDef) -> bool:
    """Does the function hold a ctx — as a parameter or from a tracer?"""
    if CTX_PARAM in _params(func):
        return True
    for node in walk_own(func):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            dotted = dotted_name(node.value.func)
            if dotted is not None and dotted.endswith(".request"):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == CTX_PARAM:
                        return True
    return False


def _passes_ctx(call: ast.Call) -> bool:
    for keyword in call.keywords:
        if keyword.arg == CTX_PARAM:
            return True
    return any(
        isinstance(arg, ast.Name) and arg.id == CTX_PARAM for arg in call.args
    )


def _receiver_matches(
    receiver: Optional[str], classes: Set[str], own_class: Optional[str]
) -> Optional[str]:
    """Which candidate class (if any) this receiver plausibly is."""
    if receiver is None:
        return None
    tail = receiver.split(".")[-1]
    for class_name in sorted(classes):
        if tail == "self" and class_name != own_class:
            continue
        if tail in _aliases(class_name):
            return class_name
    return None


@register_pass
def ctx001_propagation(project: Project) -> List[Violation]:
    """KL-CTX001: thread a held ``ctx`` into every ctx-accepting callee."""
    modules = project.modules
    accepting = _accepting_defs(modules)
    findings: List[Violation] = []
    for module in modules:
        for class_name, func in iter_functions(module.tree):
            if not _ctx_in_scope(func):
                continue
            for node in walk_own(func):
                if not isinstance(node, ast.Call):
                    continue
                if not isinstance(node.func, ast.Attribute):
                    continue
                method = node.func.attr
                if method not in accepting:
                    continue
                receiver = receiver_text(node.func.value)
                matched = _receiver_matches(
                    receiver, accepting[method], class_name
                )
                if matched is None or _passes_ctx(node):
                    continue
                findings.append(
                    Violation(
                        "KL-CTX001",
                        str(module.path),
                        node.lineno,
                        node.col_offset,
                        f"`{receiver}.{method}(...)` accepts ctx "
                        f"({matched}.{method}) but the held ctx is not "
                        "passed; the callee's spans re-root into a new trace",
                    )
                )
    return findings


def accepting_table(modules: List[LintModule]) -> List[Tuple[str, str]]:
    """(class, method) pairs that accept ctx — for docs/debugging."""
    accepting = _accepting_defs(modules)
    return sorted(
        (class_name, method)
        for method, classes in accepting.items()
        for class_name in classes
    )
