"""Entry point: ``python -m repro.analysis_tools [paths...]``."""

import sys

from repro.analysis_tools.cli import main

if __name__ == "__main__":
    sys.exit(main())
