"""Lock-discipline lints: KL-LCK001 (acquire/release pairing) and
KL-LCK002 (static lock-order graph acyclicity).

Sites are identified by receiver text, canonicalised to
``ClassName.attr`` for ``self.*`` receivers.  Two layers of analysis:

* per-function: every latch-style ``X.acquire(...)`` must see a
  matching ``X.release*()`` in the same function (KL-LCK001), and
  acquires nested inside a held lock add ``held -> wanted`` edges;
* full call-depth expansion: calling a function while holding a lock
  adds edges from the held site to every acquire in the callee's whole
  (non-spawn) transitive call tree, resolved through the project call
  graph; the legacy name-based one-level expansion is kept for callees
  the resolver cannot type.

Cycles in the resulting graph are SS2PL deadlock candidates
(KL-LCK002).  The runtime sanitizer records the orders a real run
exercises and cross-checks them against this graph.

Exemptions: classes that *implement* locks (``SimLock``, ``Resource``,
``LockTable``, ``LockManager``) and two-phase-locking managers, whose
releases happen at commit/abort by design (receivers aliasing
``LockManager``, e.g. ``self.locks``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis_tools.core import (
    LintModule,
    Violation,
    iter_functions,
    receiver_text,
    register_pass,
    walk_own,
)
from repro.analysis_tools.graph import Project

#: Classes whose own methods are the lock implementation, not clients.
IMPLEMENTATION_CLASSES = {
    "SimLock", "Resource", "Gate", "LockTable", "LockManager",
    "LockOrderRecorder",
}

#: Receiver tails that denote a two-phase-locking manager: acquire here,
#: release at commit/abort in another function — exempt from KL-LCK001
#: pairing but still part of the KL-LCK002 order graph.
TWO_PHASE_RECEIVERS = {"locks", "lock_manager", "lockmanager"}

_RELEASE_METHODS = {"release", "release_all", "release_one"}


@dataclass
class _FunctionLocks:
    """Lock behaviour of one function, for graph assembly."""

    module: LintModule
    class_name: Optional[str]
    func: ast.FunctionDef
    #: sites acquired anywhere in the function (site, line)
    acquires: List[Tuple[str, int]] = field(default_factory=list)
    #: edges observed inside the function (held -> wanted, line)
    edges: List[Tuple[str, str, int]] = field(default_factory=list)
    #: local calls made while holding a site (held, callee name, line)
    held_calls: List[Tuple[str, str, int]] = field(default_factory=list)
    #: sites acquired but never released in this function
    unreleased: List[Tuple[str, int]] = field(default_factory=list)


def _site(receiver: Optional[str], class_name: Optional[str]) -> Optional[str]:
    if receiver is None:
        return None
    if receiver == "self" or receiver.startswith("self."):
        owner = class_name or "<module>"
        attr = receiver[len("self."):] if receiver.startswith("self.") else ""
        return f"{owner}.{attr}" if attr else owner
    return receiver


def _ordered_calls(func: ast.FunctionDef) -> List[ast.Call]:
    calls = [node for node in walk_own(func) if isinstance(node, ast.Call)]
    calls.sort(key=lambda node: (node.lineno, node.col_offset))
    return calls


def _analyze_function(
    module: LintModule, class_name: Optional[str], func: ast.FunctionDef
) -> _FunctionLocks:
    info = _FunctionLocks(module, class_name, func)
    held: List[Tuple[str, int]] = []
    released: Set[str] = set()
    for call in _ordered_calls(func):
        if not isinstance(call.func, ast.Attribute):
            continue
        method = call.func.attr
        receiver = receiver_text(call.func.value)
        site = _site(receiver, class_name)
        if method == "acquire" and site is not None:
            for held_site, _line in held:
                if held_site != site:
                    info.edges.append((held_site, site, call.lineno))
            info.acquires.append((site, call.lineno))
            held.append((site, call.lineno))
        elif method in _RELEASE_METHODS and site is not None:
            released.add(site)
            for position in range(len(held) - 1, -1, -1):
                if held[position][0] == site:
                    del held[position]
                    break
        elif held:
            # A call made while holding a lock: remember it so the graph
            # pass can expand locally-defined callees one level deep.
            for held_site, _line in held:
                info.held_calls.append((held_site, method, call.lineno))
    for site, line in held:
        if site not in released:
            info.unreleased.append((site, line))
    return info


def _is_two_phase(site: str) -> bool:
    return site.split(".")[-1].lower() in TWO_PHASE_RECEIVERS


def _collect(modules: Sequence[LintModule]) -> List[_FunctionLocks]:
    return [
        _analyze_function(module, class_name, func)
        for module in modules
        for class_name, func in iter_functions(module.tree)
    ]


@register_pass
def lck001_pairing(project: Project) -> List[Violation]:
    """KL-LCK001: latch-style locks release in the acquiring function."""
    findings = []
    for info in _collect(project.modules):
        if info.class_name in IMPLEMENTATION_CLASSES:
            continue
        for site, line in info.unreleased:
            if _is_two_phase(site):
                continue
            findings.append(
                Violation(
                    "KL-LCK001",
                    str(info.module.path),
                    line,
                    info.func.col_offset,
                    f"`{info.func.name}` acquires {site} but never "
                    "releases it in any path through the function",
                )
            )
    return findings


def build_lock_graph(
    modules: Sequence[LintModule],
    project: Optional[Project] = None,
) -> Dict[Tuple[str, str], List[Tuple[str, int]]]:
    """The static lock-order graph: edge -> [(path, line), ...].

    Two expansion layers feed the graph beyond each function's own
    nested acquires:

    * **Full call depth** (graph-resolved): a callsite executed while a
      lock is held orders that lock before every acquire anywhere in
      the callee's transitive non-spawn call tree.  Spawn edges are
      excluded — a spawned process does not run under the spawner's
      latch (it is scheduled later, after the release).
    * **Legacy name-based, one level**: callee names the resolver cannot
      type still expand against every same-named function, so renamed
      receivers degrade to the old behaviour instead of vanishing.
    """
    if project is None:
        project = Project(modules)
    infos = _collect(modules)
    by_name: Dict[str, List[_FunctionLocks]] = {}
    for info in infos:
        by_name.setdefault(info.func.name, []).append(info)
    edges: Dict[Tuple[str, str], List[Tuple[str, int]]] = {}

    def add(source: str, target: str, path: str, line: int) -> None:
        if source != target:
            edges.setdefault((source, target), []).append((path, line))

    for info in infos:
        path = str(info.module.path)
        for source, target, line in info.edges:
            add(source, target, path, line)
        # One level of call expansion: F holds `held` and calls G; every
        # site G itself acquires is ordered after `held`.
        for held_site, callee, line in info.held_calls:
            for callee_info in by_name.get(callee, ()):  # noqa: B007
                for target, _acq_line in callee_info.acquires:
                    add(held_site, target, path, line)

    # Full-depth expansion over the resolved call graph.
    for uid in sorted(project.functions):
        caller = project.functions[uid]
        timeline = project.lock_timeline(caller)
        if not any(kind == "acq" for _pos, kind, _site in timeline.events):
            continue
        for site in project.call_edges.get(uid, ()):  # noqa: B007
            if site.spawn:
                continue
            held = timeline.held_at(site.line, site.col)
            if not held:
                continue
            for reached_uid in sorted(project.reachable(site.callee)):
                reached = project.functions[reached_uid]
                reached_timeline = project.lock_timeline(reached)
                for _pos, kind, acq_site in reached_timeline.events:
                    if kind != "acq":
                        continue
                    for held_site in sorted(held):
                        add(held_site, acq_site, str(caller.path), site.line)
    return edges


def find_cycles(
    edges: Dict[Tuple[str, str], List[Tuple[str, int]]]
) -> List[List[str]]:
    """Elementary cycles (as site paths), deterministically ordered."""
    adjacency: Dict[str, Set[str]] = {}
    for source, target in edges:
        adjacency.setdefault(source, set()).add(target)
    cycles: List[List[str]] = []
    seen_keys: Set[Tuple[str, ...]] = set()
    for start in sorted(adjacency):
        stack: List[Tuple[str, List[str]]] = [(start, [start])]
        while stack:
            node, trail = stack.pop()
            for succ in sorted(adjacency.get(node, ()), reverse=True):
                if succ == start:
                    cycle = trail + [start]
                    # Canonical key: rotation-invariant smallest form.
                    body = tuple(sorted(cycle[:-1]))
                    if body not in seen_keys:
                        seen_keys.add(body)
                        cycles.append(cycle)
                elif succ not in trail:
                    stack.append((succ, trail + [succ]))
    return cycles


@register_pass
def lck002_lock_order(project: Project) -> List[Violation]:
    """KL-LCK002: the static lock-order graph must stay acyclic."""
    edges = build_lock_graph(project.modules, project=project)
    findings = []
    for cycle in find_cycles(edges):
        first_edge = (cycle[0], cycle[1])
        sites = edges.get(first_edge) or [("<unknown>", 0)]
        path, line = sites[0]
        findings.append(
            Violation(
                "KL-LCK002",
                path,
                line,
                0,
                "lock-order cycle: " + " -> ".join(cycle)
                + "; impose a global acquisition order",
            )
        )
    return findings
