"""The ``kamllint`` command line.

Usage::

    python -m repro.analysis_tools src/repro            # human output
    python -m repro.analysis_tools --json src/repro     # machine output
    python -m repro.analysis_tools --lock-graph src/repro
    python -m repro.analysis_tools --list-rules

Exit status: 0 when clean, 1 when violations were found, 2 on usage
errors.  Pre-commit passes individual changed files as arguments; CI
passes the whole tree.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis_tools.core import run_lint
from repro.analysis_tools.locks import build_lock_graph, find_cycles

#: rule id -> one-line description (kept in sync with docs/static-analysis.md)
RULES = {
    "KL-DET001": "no wall-clock reads outside harness.reporting.wallclock()",
    "KL-DET002": "no module-level random.*; inject seeded random.Random",
    "KL-DET003": "no iteration over set-typed values (hash-order leak)",
    "KL-CTX001": "a held TraceContext must be passed to ctx-accepting callees",
    "KL-LCK001": "latch-style locks release in the acquiring function",
    "KL-LCK002": "the static lock-order graph must be acyclic",
    "KL-SIM001": "sim processes (generators) must not call host I/O",
    "KL-INV001": "no assert guards; raise repro.errors.InvariantError",
    "KL-FLT001": "fault-injection code must not read mapping-table state",
    "KL-OBS001": "span names and component= tags must be in the kamlprof taxonomy",
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis_tools",
        description="kamllint: protocol/determinism static analysis for src/repro.",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument("--json", action="store_true", help="machine-readable output")
    parser.add_argument(
        "--rules",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rule ids and exit"
    )
    parser.add_argument(
        "--lock-graph",
        action="store_true",
        help="dump the static lock-order graph as JSON and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, description in sorted(RULES.items()):
            print(f"{rule}  {description}")
        return 0

    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given (try: src/repro)", file=sys.stderr)
        return 2

    rules = None
    if args.rules:
        rules = [rule.strip() for rule in args.rules.split(",") if rule.strip()]
        unknown = [rule for rule in rules if rule not in RULES]
        if unknown:
            print(f"error: unknown rule ids: {', '.join(unknown)}", file=sys.stderr)
            return 2

    if args.lock_graph:
        from repro.analysis_tools.core import load_modules

        modules = load_modules(args.paths)
        edges = build_lock_graph(modules)
        payload = {
            "edges": [
                {
                    "from": source,
                    "to": target,
                    "sites": [{"path": path, "line": line} for path, line in sites],
                }
                for (source, target), sites in sorted(edges.items())
            ],
            "cycles": find_cycles(edges),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 1 if payload["cycles"] else 0

    findings = run_lint(args.paths, rules=rules)
    if args.json:
        print(
            json.dumps(
                {
                    "violations": [violation.to_dict() for violation in findings],
                    "count": len(findings),
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for violation in findings:
            print(violation.render())
        summary = f"kamllint: {len(findings)} violation(s)"
        print(summary if findings else "kamllint: clean")
    return 1 if findings else 0
