"""The ``kamllint`` command line.

Usage::

    python -m repro.analysis_tools src/repro            # human output
    python -m repro.analysis_tools --json src/repro     # machine output
    python -m repro.analysis_tools --format github src/repro
    python -m repro.analysis_tools --lock-graph src/repro
    python -m repro.analysis_tools --list-rules

Exit status: 0 when clean, 1 when violations were found (or stale
pragmas under ``--strict-pragmas``), 2 on usage errors — including an
unknown rule id in ``--rules``.  Pre-commit passes individual changed
files as arguments; CI passes the whole tree with ``--format github``
so findings annotate the PR diff, plus ``--json-out`` for the report
artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis_tools.core import (
    RULE_CATALOGUE,
    LintReport,
    UnknownRuleError,
    Violation,
    run_analysis,
)
from repro.analysis_tools.locks import build_lock_graph, find_cycles

#: Back-compat alias: the catalogue moved to core so the CLI, ``--rules``
#: validation, and the pragma audit share one source of truth.
RULES = RULE_CATALOGUE


def _github_escape(text: str) -> str:
    """Escape message data for a GitHub workflow command."""
    return (
        text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )


def _render_github(violation: Violation) -> str:
    message = violation.message
    if violation.trace:
        message += " [via: " + " -> ".join(violation.trace) + "]"
    return (
        f"::error file={violation.path},line={violation.line},"
        f"col={violation.col + 1},title={violation.rule}::"
        + _github_escape(message)
    )


def _report_payload(report: LintReport) -> dict:
    return {
        "violations": [violation.to_dict() for violation in report.violations],
        "count": len(report.violations),
        "stale_pragmas": [stale.to_dict() for stale in report.stale_pragmas],
        "modules": report.module_count,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis_tools",
        description="kamllint: protocol/determinism static analysis for src/repro.",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--format",
        choices=("text", "github", "json"),
        default="text",
        help="output format (github emits workflow error annotations)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="machine-readable output (alias for --format json)",
    )
    parser.add_argument(
        "--json-out",
        metavar="PATH",
        help="additionally write the JSON report to a file (CI artifact)",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--strict-pragmas",
        action="store_true",
        help="fail (exit 1) when stale allow[...] pragmas are found",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rule ids and exit"
    )
    parser.add_argument(
        "--lock-graph",
        action="store_true",
        help="dump the static lock-order graph as JSON and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, description in sorted(RULE_CATALOGUE.items()):
            print(f"{rule}  {description}")
        return 0

    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given (try: src/repro)", file=sys.stderr)
        return 2

    rules = None
    if args.rules:
        rules = [rule.strip() for rule in args.rules.split(",") if rule.strip()]

    if args.lock_graph:
        from repro.analysis_tools.core import load_modules

        modules = load_modules(args.paths)
        edges = build_lock_graph(modules)
        payload = {
            "edges": [
                {
                    "from": source,
                    "to": target,
                    "sites": [{"path": path, "line": line} for path, line in sites],
                }
                for (source, target), sites in sorted(edges.items())
            ],
            "cycles": find_cycles(edges),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 1 if payload["cycles"] else 0

    try:
        report = run_analysis(args.paths, rules=rules)
    except UnknownRuleError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    output_format = "json" if args.json else args.format
    payload = _report_payload(report)
    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")

    if output_format == "json":
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif output_format == "github":
        for violation in report.violations:
            print(_render_github(violation))
        for stale in report.stale_pragmas:
            print(
                f"::warning file={stale.path},line={max(stale.line, 1)},"
                f"title=stale-pragma::" + _github_escape(stale.message)
            )
    else:
        for violation in report.violations:
            print(violation.render())
        for stale in report.stale_pragmas:
            print(stale.render())
        summary = f"kamllint: {len(report.violations)} violation(s)"
        if report.stale_pragmas:
            summary += f", {len(report.stale_pragmas)} stale pragma(s)"
        print(summary if (report.violations or report.stale_pragmas) else "kamllint: clean")

    if report.violations:
        return 1
    if args.strict_pragmas and report.stale_pragmas:
        return 1
    return 0
