"""``kamllint``: protocol/determinism static analysis for the KAML stack.

An AST-based lint pass over ``src/repro`` enforcing the invariants the
concurrency design relies on (see ``docs/static-analysis.md``):

* ``KL-DET001`` — no wall-clock reads in sim/firmware code,
* ``KL-DET002`` — no module-level ``random.*`` (seeded ``random.Random``
  instances only),
* ``KL-DET003`` — no iteration over set-typed values (hash-order leaks),
* ``KL-CTX001`` — a ``TraceContext`` in scope must be threaded to every
  callee that accepts one,
* ``KL-LCK001`` — latch-style acquire/release pairing per function,
* ``KL-LCK002`` — the static lock-order graph must be acyclic,
* ``KL-SIM001`` — sim processes (generators) must not do host I/O,
* ``KL-INV001`` — no ``assert`` guards (they vanish under ``python -O``).

Run via ``python -m repro.analysis_tools src/repro`` (human output) or
``--json`` for machines; suppress a finding in place with a
``# kamllint: allow[RULE-ID] reason`` pragma.
"""

from repro.analysis_tools.core import (
    LintModule,
    Violation,
    load_modules,
    run_lint,
)
from repro.analysis_tools.locks import build_lock_graph

__all__ = [
    "LintModule",
    "Violation",
    "build_lock_graph",
    "load_modules",
    "run_lint",
]
