"""``kamllint``: protocol/determinism static analysis for the KAML stack.

An AST-based lint pass over ``src/repro`` enforcing the invariants the
concurrency design relies on (see ``docs/static-analysis.md``):

* ``KL-DET001`` — no wall-clock reads in sim/firmware code,
* ``KL-DET002`` — no module-level ``random.*`` (seeded ``random.Random``
  instances only),
* ``KL-DET003`` — no iteration over set-typed values (hash-order leaks),
* ``KL-CTX001`` — a ``TraceContext`` in scope must be threaded to every
  callee that accepts one,
* ``KL-LCK001`` — latch-style acquire/release pairing per function,
* ``KL-LCK002`` — the static lock-order graph must be acyclic, expanded
  to full call depth over the project call graph,
* ``KL-SIM001`` — sim processes (generators) must not do host I/O,
* ``KL-SIM002`` — nor may anything they can reach through calls,
* ``KL-INV001`` — no ``assert`` guards (they vanish under ``python -O``),
* ``KL-RACE001`` — no unlocked cross-process use of shared state across
  a yield (the static analogue of the read-vs-GC relocation race),
* ``KL-RES001`` — pins and NVRAM reservations release on every path,
  across call boundaries.

The interprocedural rules run on a shared project call graph
(``repro.analysis_tools.graph``) built once per run from a single parse
of each file.  Run via ``python -m repro.analysis_tools src/repro``
(human output), ``--format github`` (workflow annotations) or ``--json``
for machines; suppress a finding in place with a
``# kamllint: allow[RULE-ID] reason`` pragma — stale pragmas are
themselves reported.
"""

from repro.analysis_tools.core import (
    LintModule,
    LintReport,
    RULE_CATALOGUE,
    UnknownRuleError,
    Violation,
    clear_module_cache,
    load_modules,
    run_analysis,
    run_lint,
)
from repro.analysis_tools.locks import build_lock_graph

__all__ = [
    "LintModule",
    "LintReport",
    "RULE_CATALOGUE",
    "UnknownRuleError",
    "Violation",
    "build_lock_graph",
    "clear_module_cache",
    "load_modules",
    "run_analysis",
    "run_lint",
]
