"""KL-OBS001: span-name and component-tag taxonomy lint.

The kamlprof attribution (``repro.obs.profile``) maps every span name to
a latency component; a span emitted under an unregistered name silently
lands in the ``other`` bucket and the breakdown stops explaining where
the time went.  This rule keeps the vocabulary closed: every string
literal passed as the name of ``.begin`` / ``.span`` / ``.record_span``
/ ``.event`` / ``.request``, and every ``component=`` string literal,
must be registered in ``SPAN_COMPONENTS`` / ``COMPONENTS``.

Matching is conservative: only string *literals* are checked — a name
built dynamically (f-string, variable) is skipped — and the receiver
must look like a trace context or tracer (``ctx.begin``,
``flush_ctx.span``, ``self.tracer.request``): other objects with a
``begin``/``event``/``request`` method (shadow models, environments,
resources) are out of scope.  New span names are cheap to register: add
the name and its component to ``repro.obs.profile.SPAN_COMPONENTS``.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.analysis_tools.core import (
    TOOLING_SUBPACKAGES,
    LintModule,
    Violation,
    receiver_text,
    register_pass,
)
from repro.analysis_tools.graph import Project
from repro.obs.profile import COMPONENTS, KNOWN_SPAN_NAMES

RULE = "KL-OBS001"

#: Methods whose first argument names a span (or a trace root).
SPAN_METHODS = frozenset({"begin", "span", "record_span", "event", "request"})


def _is_trace_receiver(receiver: Optional[str]) -> bool:
    """Does the receiver's dotted text plausibly hold a ctx or tracer?"""
    if receiver is None:
        return False
    last = receiver.split(".")[-1]
    return "ctx" in last or "tracer" in last


def _first_literal(call: ast.Call) -> "ast.Constant | None":
    if not call.args:
        return None
    first = call.args[0]
    if isinstance(first, ast.Constant) and isinstance(first.value, str):
        return first
    return None


@register_pass
def span_taxonomy_pass(project: Project) -> List[Violation]:
    modules = project.modules
    findings: List[Violation] = []
    for module in modules:
        if module.subpackage in TOOLING_SUBPACKAGES:
            continue
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in SPAN_METHODS
                and _is_trace_receiver(receiver_text(node.func.value))
            ):
                literal = _first_literal(node)
                if literal is not None and literal.value not in KNOWN_SPAN_NAMES:
                    findings.append(
                        Violation(
                            rule=RULE,
                            path=str(module.path),
                            line=literal.lineno,
                            col=literal.col_offset,
                            message=(
                                f"span name {literal.value!r} is not registered "
                                "in repro.obs.profile.SPAN_COMPONENTS; kamlprof "
                                "would attribute it to 'other'"
                            ),
                        )
                    )
            for keyword in node.keywords:
                if keyword.arg != "component":
                    continue
                value = keyword.value
                if (
                    isinstance(value, ast.Constant)
                    and isinstance(value.value, str)
                    and value.value not in COMPONENTS
                ):
                    findings.append(
                        Violation(
                            rule=RULE,
                            path=str(module.path),
                            line=value.lineno,
                            col=value.col_offset,
                            message=(
                                f"component tag {value.value!r} is not in "
                                "repro.obs.profile.COMPONENTS"
                            ),
                        )
                    )
    return findings
