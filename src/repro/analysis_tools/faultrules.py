"""Fault-injection hygiene: KL-FLT001 (no mapping-table peeking).

The crash-consistency harness is only evidence of recovery correctness
if it observes the device the way a host does — through ``get``/``put``/
``delete``/``recover``.  A fault scenario that reads the mapping table
or staging dictionaries directly would "verify" recovery against the
very state recovery rebuilds, letting a bug vanish into its own test.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis_tools.core import (
    LintModule,
    TOOLING_SUBPACKAGES,
    Violation,
    register_pass,
)
from repro.analysis_tools.graph import Project

#: Device-private state fault code must never read: the per-namespace
#: mapping table and the SSD's install/staging bookkeeping.
_FORBIDDEN_ATTRS = {
    "index",
    "_installed_versions",
    "_staged",
    "_valid_bytes",
    "_tombstones",
}


def _is_fault_module(module: LintModule) -> bool:
    if module.subpackage in TOOLING_SUBPACKAGES:
        return False
    return module.subpackage == "fault" or module.path.name.startswith("fault")


@register_pass
def flt001_no_mapping_peek(project: Project) -> List[Violation]:
    """KL-FLT001: fault-injection code must not read mapping-table state.

    Flags every Load-context attribute access to the forbidden names in
    modules under ``repro/fault/`` (or files named ``fault*``).  Writes
    are not flagged — there are none to write to from outside, and the
    Load restriction is what keeps verification honest.
    """
    modules = project.modules
    findings = []
    for module in modules:
        if not _is_fault_module(module):
            continue
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
                and node.attr in _FORBIDDEN_ATTRS
            ):
                findings.append(
                    Violation(
                        "KL-FLT001",
                        str(module.path),
                        node.lineno,
                        node.col_offset,
                        f"fault code reads device-private `{node.attr}`; "
                        "observe the device through its public command "
                        "surface (get/put/delete/recover)",
                    )
                )
    return findings
