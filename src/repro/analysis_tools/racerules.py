"""KL-RACE001: cross-process use of shared state across a yield.

The static analogue of the read-vs-GC relocation race PR 5 fixed at
runtime: a sim process loads a shared attribute into a local, yields
(letting the scheduler run other processes), then trusts the stale
local — while a *different* process mutates the same attribute with no
common ``SimLock`` protecting the pair.

Between-yield atomicity makes plain shared-state access safe inside one
synchronous block, so the rule fires only on the combination that
actually breaks that discipline:

* a **cross-yield stale read** (load -> yield -> use of the same local)
  inside code reachable from one statically-spawned process root, and
* a **mutation** of the same ``Owner.attr`` key inside code reachable
  from a *different* process root, and
* **no common lock**: the locks held across the reader's load->use
  window (including latches held by callers up the chain) share nothing
  with the locks held at the writer's mutation site.

Reachability and attribute resolution come from the project call graph
(:mod:`repro.analysis_tools.graph`); the per-function read/write facts
from the dataflow engine (:mod:`repro.analysis_tools.dataflow`).  Both
under-approximate, so an unresolvable receiver silences the rule rather
than producing a spurious race.

The fix is the same one `_pin_location` applies in ``kaml/ssd.py``:
re-validate (or pin) the shared state *after* the yield, in the same
sim instant as its use, or hold a common lock across the window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from repro.analysis_tools.core import (
    TOOLING_SUBPACKAGES,
    Violation,
    register_pass,
)
from repro.analysis_tools.dataflow import analyze_function
from repro.analysis_tools.graph import Project


@dataclass(frozen=True)
class _Access:
    """One read or write of a shared attribute, in process context."""

    root: str               # process-root uid
    root_display: str
    func_uid: str
    path: str
    line: int
    col: int
    locks: FrozenSet[str]   # access-site locks ∪ chain-held locks
    chain: Tuple[str, ...]  # root -> ... -> accessing function
    detail: str             # "read into `loc`" / ".pop() write"


def _process_accesses(
    project: Project,
) -> Tuple[Dict[str, List[_Access]], Dict[str, List[_Access]]]:
    """Cross-yield reads and writes per shared-attribute key."""
    reads: Dict[str, List[_Access]] = {}
    writes: Dict[str, List[_Access]] = {}
    summaries: Dict[str, object] = {}
    for spawn in project.process_roots():
        root_info = project.functions[spawn.root]
        root_display = root_info.display
        tree = project.reachable_tree(spawn.root)
        for uid in sorted(tree):
            info = project.functions[uid]
            if info.module.subpackage in TOOLING_SUBPACKAGES:
                continue
            summary = summaries.get(uid)
            if summary is None:
                summary = analyze_function(project, info)
                summaries[uid] = summary
            chain = project.chain(tree, uid)
            chain_locks = project.chain_held_locks(tree, uid)
            for read in summary.reads:
                reads.setdefault(read.key, []).append(
                    _Access(
                        root=spawn.root,
                        root_display=root_display,
                        func_uid=uid,
                        path=str(info.path),
                        line=read.use_line,
                        col=read.use_col,
                        locks=read.locks | chain_locks,
                        chain=chain,
                        detail=(
                            f"`{read.var}` loaded from {read.key} at line "
                            f"{read.load_line}, used after a yield"
                        ),
                    )
                )
            for write in summary.writes:
                writes.setdefault(write.key, []).append(
                    _Access(
                        root=spawn.root,
                        root_display=root_display,
                        func_uid=uid,
                        path=str(info.path),
                        line=write.line,
                        col=write.col,
                        locks=write.locks | chain_locks,
                        chain=chain,
                        detail=write.desc,
                    )
                )
    return reads, writes


@register_pass
def race001_cross_process(project: Project) -> List[Violation]:
    """KL-RACE001: no unlocked cross-process stale use of shared state."""
    reads, writes = _process_accesses(project)
    findings: List[Violation] = []
    reported = set()
    for key in sorted(set(reads) & set(writes)):
        for read in reads[key]:
            racing = [
                write
                for write in writes[key]
                if write.root != read.root and not (write.locks & read.locks)
            ]
            if not racing:
                continue
            anchor = (read.path, read.line, read.col, key)
            if anchor in reported:
                continue
            reported.add(anchor)
            write = sorted(racing, key=lambda w: (w.path, w.line, w.col))[0]
            findings.append(
                Violation(
                    "KL-RACE001",
                    read.path,
                    read.line,
                    read.col,
                    f"stale use of {key} across a yield in process "
                    f"`{read.root_display}` ({read.detail}) races with "
                    f"{write.detail} in process `{write.root_display}` "
                    f"({write.path}:{write.line}); no common lock — "
                    "re-validate after the yield or hold a shared SimLock",
                    trace=read.chain + ("<-races->",) + write.chain,
                )
            )
    return findings
