"""Interprocedural analysis framework: the project call graph.

Built once per lint run from the parsed modules, then shared by every
pass (:class:`~repro.analysis_tools.core.Project` is constructed in
``run_analysis``).  Three layers:

* **Function/class index** — every ``def`` in the tree, keyed by a
  file-qualified uid, plus per-class attribute types inferred from
  ``self.x = ClassName(...)`` assignments.
* **Call edges** — each callsite resolved to candidate callees through
  a receiver resolver that extends ``ctxlint``'s class-alias heuristics
  with attribute- and local-type inference.  ``env.process(f(...))``
  callsites are tagged as *spawn* edges: the spawned generator is a sim
  process root, and spawn edges are never traversed when computing what
  runs *inside* a given process (the child is a different process).
* **Reachability + lock context** — breadth-first reachability from any
  function with the shortest call chain recorded per reached function
  (rules render these as ``trace``), and a per-function latch timeline
  answering "which ``SimLock`` sites are held at this source position"
  so interprocedural rules can propagate lock context through calls.

Resolution is deliberately conservative: an unresolvable receiver adds
no edge.  Rules built on the graph therefore under-approximate
reachability rather than hallucinate it — the same contract the
per-function rules have always had.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis_tools.core import (
    LintModule,
    dotted_name,
    is_generator,
    receiver_text,
    walk_own,
)

#: Latch method names (mirrors repro.sim.sync.SimLock's surface).
ACQUIRE_METHODS = {"acquire"}
RELEASE_METHODS = {"release", "release_all", "release_one"}


def snake(name: str) -> str:
    return re.sub(r"(?<!^)(?=[A-Z])", "_", name).lower()


def class_aliases(class_name: str) -> Set[str]:
    """Receiver spellings that plausibly hold an instance of the class.

    ``KamlLog`` -> ``kaml_log``/``kamllog``/``log``/``logs``/``self``;
    shared by ctxlint's KL-CTX001 resolver and the call-graph fallback.
    """
    snaked = snake(class_name)
    aliases = {snaked, snaked.replace("_", "")}
    parts = snaked.split("_")
    aliases.add(parts[-1])          # kaml_log -> log
    aliases.add(parts[-1] + "s")    # collections: logs[i]
    if parts[0] in ("kaml", "repro"):
        aliases.add("_".join(parts[1:]))
    aliases.add("self")             # sibling methods on the same class
    return aliases


@dataclass
class FunctionInfo:
    """One ``def`` in the project."""

    module: LintModule
    class_name: Optional[str]
    func: ast.FunctionDef
    uid: str        # file-qualified: "<path>::Class.method"
    display: str    # human name: "Class.method" or "function"
    is_generator: bool

    @property
    def path(self) -> str:
        return str(self.module.path)


@dataclass
class ClassInfo:
    """One ``class`` definition plus inferred attribute types."""

    name: str
    module: LintModule
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    base_names: List[str] = field(default_factory=list)
    #: self.<attr> -> class name assigned from a ``ClassName(...)`` call
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class CallSite:
    """One resolved callsite: caller -> callee."""

    callee: str     # FunctionInfo uid
    line: int
    col: int
    spawn: bool     # env.process(...) spawn, not a same-process call


@dataclass(frozen=True)
class SpawnSite:
    """One ``env.process(f(...))`` site making ``root`` a sim process."""

    root: str       # spawned FunctionInfo uid
    spawner: str    # FunctionInfo uid containing the spawn call
    line: int


class LockTimeline:
    """Latch acquire/release events of one function, in source order.

    Canonical sites are ``ClassName.attr`` for ``self.*`` receivers (the
    same canonicalisation the KL-LCK rules use), so lock identity is
    stable across the functions of one class.
    """

    def __init__(self, events: List[Tuple[Tuple[int, int], str, str]]):
        #: ((line, col), "acq"|"rel", site) sorted by position
        self.events = events

    def held_at(self, line: int, col: int) -> FrozenSet[str]:
        """Lock sites held just before the given source position."""
        held: List[str] = []
        for (ev_line, ev_col), kind, site in self.events:
            if (ev_line, ev_col) >= (line, col):
                break
            if kind == "acq":
                held.append(site)
            else:
                for index in range(len(held) - 1, -1, -1):
                    if held[index] == site:
                        del held[index]
                        break
        return frozenset(held)


def canonical_site(receiver: Optional[str], class_name: Optional[str]) -> Optional[str]:
    """``self.x`` -> ``Class.x``; other receivers keep their dotted text."""
    if receiver is None:
        return None
    if receiver == "self" or receiver.startswith("self."):
        owner = class_name or "<module>"
        attr = receiver[len("self."):] if receiver.startswith("self.") else ""
        return f"{owner}.{attr}" if attr else owner
    return receiver


class Project:
    """The shared analysis context: modules + interprocedural call graph."""

    def __init__(self, modules: Sequence[LintModule]):
        self.modules: List[LintModule] = list(modules)
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, List[ClassInfo]] = {}
        #: module path -> module-level function name -> FunctionInfo
        self._module_functions: Dict[str, Dict[str, FunctionInfo]] = {}
        self._index()
        #: caller uid -> callsites (resolved; unresolvable calls add none)
        self.call_edges: Dict[str, List[CallSite]] = {}
        self.spawn_sites: List[SpawnSite] = []
        self._local_types_cache: Dict[str, Dict[str, str]] = {}
        self._lock_timelines: Dict[str, LockTimeline] = {}
        self._resolve_all_calls()

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------

    def _index(self) -> None:
        for module in self.modules:
            path = str(module.path)
            self._module_functions[path] = {}
            for node in module.tree.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info = self._add_function(module, None, node)
                    self._module_functions[path][node.name] = info
                elif isinstance(node, ast.ClassDef):
                    cls = ClassInfo(
                        name=node.name,
                        module=module,
                        node=node,
                        base_names=[
                            base.id for base in node.bases if isinstance(base, ast.Name)
                        ],
                    )
                    for child in node.body:
                        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                            cls.methods[child.name] = self._add_function(
                                module, node.name, child
                            )
                    self._infer_attr_types(cls)
                    self.classes.setdefault(node.name, []).append(cls)

    def _add_function(
        self, module: LintModule, class_name: Optional[str], func: ast.FunctionDef
    ) -> FunctionInfo:
        display = f"{class_name}.{func.name}" if class_name else func.name
        uid = f"{module.path}::{display}"
        info = FunctionInfo(
            module=module,
            class_name=class_name,
            func=func,
            uid=uid,
            display=display,
            is_generator=is_generator(func),
        )
        self.functions[uid] = info
        return info

    def _infer_attr_types(self, cls: ClassInfo) -> None:
        """``self.x = ClassName(...)`` anywhere in the class types attr x."""
        for info in cls.methods.values():
            for node in walk_own(info.func):
                if not isinstance(node, ast.Assign):
                    continue
                value = node.value
                if not (isinstance(value, ast.Call) and isinstance(value.func, ast.Name)):
                    continue
                type_name = value.func.id
                if type_name not in self.classes and not self._class_exists(type_name):
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        cls.attr_types.setdefault(target.attr, type_name)

    def _class_exists(self, name: str) -> bool:
        return name in self.classes

    # ------------------------------------------------------------------
    # Class / receiver resolution
    # ------------------------------------------------------------------

    def class_info(
        self, name: str, prefer_module: Optional[LintModule] = None
    ) -> Optional[ClassInfo]:
        candidates = self.classes.get(name)
        if not candidates:
            return None
        if prefer_module is not None:
            for cls in candidates:
                if cls.module is prefer_module:
                    return cls
        if len(candidates) == 1:
            return candidates[0]
        return sorted(candidates, key=lambda c: str(c.module.path))[0]

    def find_method(
        self, cls: Optional[ClassInfo], method: str, _seen: Optional[Set[str]] = None
    ) -> Optional[FunctionInfo]:
        """Method lookup with single-inheritance base chasing."""
        if cls is None:
            return None
        if method in cls.methods:
            return cls.methods[method]
        seen = _seen or set()
        seen.add(cls.name)
        for base_name in cls.base_names:
            if base_name in seen:
                continue
            found = self.find_method(
                self.class_info(base_name, cls.module), method, seen
            )
            if found is not None:
                return found
        return None

    def local_types(self, info: FunctionInfo) -> Dict[str, str]:
        """Local variable -> class name, inferred from simple assignments.

        ``x = ClassName(...)`` and ``x = self.attr`` (with a typed attr)
        are tracked; anything cleverer is left unresolved.
        """
        cached = self._local_types_cache.get(info.uid)
        if cached is not None:
            return cached
        types: Dict[str, str] = {}
        own_class = self.class_info(info.class_name, info.module) if info.class_name else None
        for node in walk_own(info.func):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            value = node.value
            if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
                if self._class_exists(value.func.id):
                    types[target.id] = value.func.id
            elif (
                isinstance(value, ast.Attribute)
                and isinstance(value.value, ast.Name)
                and value.value.id == "self"
                and own_class is not None
                and value.attr in own_class.attr_types
            ):
                types[target.id] = own_class.attr_types[value.attr]
        self._local_types_cache[info.uid] = types
        return types

    def resolve_receiver_class(
        self, info: FunctionInfo, receiver: Optional[str], method: str
    ) -> Optional[ClassInfo]:
        """Which class a ``receiver.method(...)`` call lands on, if known.

        Resolution order: ``self`` / typed ``self.attr`` / typed local /
        the ctxlint-style alias heuristic (unique tail match among the
        classes that actually define ``method``).
        """
        if receiver is None:
            return None
        own_class = self.class_info(info.class_name, info.module) if info.class_name else None
        parts = receiver.split(".")
        if parts[0] == "self" and own_class is not None:
            if len(parts) == 1:
                return own_class
            if len(parts) == 2 and parts[1] in own_class.attr_types:
                return self.class_info(own_class.attr_types[parts[1]], info.module)
            # deeper self.a.b chains: fall through to the alias heuristic
        elif len(parts) == 1:
            local_type = self.local_types(info).get(parts[0])
            if local_type is not None:
                return self.class_info(local_type, info.module)
        # Alias fallback, restricted to classes defining the method.
        tail = parts[-1]
        if tail == "self":
            return None
        matches = []
        for class_name in sorted(self.classes):
            candidates = self.classes[class_name]
            if not any(method in cls.methods for cls in candidates):
                continue
            if tail in class_aliases(class_name):
                matches.append(class_name)
        if len(matches) == 1:
            return self.class_info(matches[0], info.module)
        return None

    def resolve_attr_base(
        self, info: FunctionInfo, base: Optional[str]
    ) -> Optional[str]:
        """Canonical owner for an attribute access base expression.

        ``self`` -> the enclosing class; a typed local -> its class; a
        unique alias-tail match -> that class.  Returns the class *name*
        (shared-state keys are ``ClassName.attr``), or None.
        """
        if base is None:
            return None
        parts = base.split(".")
        if parts[0] == "self":
            if len(parts) == 1:
                return info.class_name
            own_class = (
                self.class_info(info.class_name, info.module) if info.class_name else None
            )
            if own_class is not None and len(parts) == 2:
                return own_class.attr_types.get(parts[1])
            return None
        if len(parts) == 1:
            local_type = self.local_types(info).get(parts[0])
            if local_type is not None:
                return local_type
            tail = parts[0]
            matches = [
                class_name
                for class_name in sorted(self.classes)
                if tail != "self" and tail in class_aliases(class_name)
            ]
            if len(matches) == 1:
                return matches[0]
        return None

    # ------------------------------------------------------------------
    # Call edges and spawns
    # ------------------------------------------------------------------

    def _resolve_all_calls(self) -> None:
        for info in self.functions.values():
            sites: List[CallSite] = []
            for node in walk_own(info.func):
                if not isinstance(node, ast.Call):
                    continue
                spawn_target = self._spawn_target(node)
                if spawn_target is not None:
                    target_info = self._resolve_call(info, spawn_target)
                    if target_info is not None:
                        sites.append(
                            CallSite(target_info.uid, node.lineno, node.col_offset, True)
                        )
                        self.spawn_sites.append(
                            SpawnSite(target_info.uid, info.uid, node.lineno)
                        )
                    continue
                callee = self._resolve_call(info, node)
                if callee is not None:
                    sites.append(
                        CallSite(callee.uid, node.lineno, node.col_offset, False)
                    )
            self.call_edges[info.uid] = sites

    @staticmethod
    def _spawn_target(node: ast.Call) -> Optional[ast.Call]:
        """The ``f(...)`` argument of an ``env.process(f(...))`` call."""
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "process"):
            return None
        receiver = receiver_text(func.value)
        if receiver is None or receiver.split(".")[-1] != "env":
            return None
        if node.args and isinstance(node.args[0], ast.Call):
            return node.args[0]
        return None

    def _resolve_call(
        self, info: FunctionInfo, call: ast.Call
    ) -> Optional[FunctionInfo]:
        func = call.func
        if isinstance(func, ast.Name):
            return self._module_functions.get(info.path, {}).get(func.id)
        if not isinstance(func, ast.Attribute):
            return None
        method = func.attr
        receiver = receiver_text(func.value)
        cls = self.resolve_receiver_class(info, receiver, method)
        return self.find_method(cls, method)

    def process_roots(self) -> List[SpawnSite]:
        """Every statically-visible ``env.process`` spawn, deduplicated by
        spawned function (first spawn site wins, deterministically)."""
        seen: Set[str] = set()
        roots: List[SpawnSite] = []
        for site in sorted(self.spawn_sites, key=lambda s: (s.root, s.spawner, s.line)):
            if site.root in seen:
                continue
            seen.add(site.root)
            roots.append(site)
        return roots

    # ------------------------------------------------------------------
    # Reachability
    # ------------------------------------------------------------------

    def reachable_tree(
        self, root: str, *, through_spawns: bool = False
    ) -> Dict[str, Optional[Tuple[str, CallSite]]]:
        """BFS tree from ``root``: uid -> (parent uid, callsite), None at root.

        Spawn edges are excluded by default: code a process *spawns* runs
        in a different process and must not count as "inside" this one.
        """
        if root not in self.functions:
            return {}
        tree: Dict[str, Optional[Tuple[str, CallSite]]] = {root: None}
        frontier = [root]
        while frontier:
            next_frontier: List[str] = []
            for uid in frontier:
                for site in self.call_edges.get(uid, ()):  # noqa: B007
                    if site.spawn and not through_spawns:
                        continue
                    if site.callee in tree:
                        continue
                    tree[site.callee] = (uid, site)
                    next_frontier.append(site.callee)
            frontier = next_frontier
        return tree

    def chain(
        self, tree: Dict[str, Optional[Tuple[str, CallSite]]], uid: str
    ) -> Tuple[str, ...]:
        """Display-name call chain from the tree's root down to ``uid``."""
        names: List[str] = []
        cursor: Optional[str] = uid
        while cursor is not None:
            names.append(self.functions[cursor].display)
            step = tree.get(cursor)
            cursor = step[0] if step else None
        return tuple(reversed(names))

    def chain_held_locks(
        self, tree: Dict[str, Optional[Tuple[str, CallSite]]], uid: str
    ) -> FrozenSet[str]:
        """Lock sites held at the callsites leading from the root to ``uid``.

        A lock acquired by a caller and still held at the callsite stays
        held for the whole callee subtree (latches release in the
        acquiring function, per KL-LCK001), so the union over the chain
        is the interprocedural lock context of ``uid``.
        """
        held: Set[str] = set()
        cursor: Optional[str] = uid
        while cursor is not None:
            step = tree.get(cursor)
            if not step:
                break
            caller, site = step
            timeline = self.lock_timeline(self.functions[caller])
            held.update(timeline.held_at(site.line, site.col))
            cursor = caller
        return frozenset(held)

    def reachable(
        self, root: str, *, through_spawns: bool = False
    ) -> Dict[str, Tuple[str, ...]]:
        """Functions reachable from ``root`` with the shortest call chain.

        Chains are tuples of display names, root first.
        """
        tree = self.reachable_tree(root, through_spawns=through_spawns)
        return {uid: self.chain(tree, uid) for uid in tree}

    def transitive_callees(self, root: str) -> Set[str]:
        """All uids reachable from ``root`` through plain (non-spawn) calls."""
        return set(self.reachable(root))

    def callers_of(self, uid: str) -> List[Tuple[str, CallSite]]:
        """(caller uid, callsite) pairs targeting ``uid``."""
        result = []
        for caller, sites in self.call_edges.items():
            for site in sites:
                if site.callee == uid:
                    result.append((caller, site))
        return result

    # ------------------------------------------------------------------
    # Latch timelines
    # ------------------------------------------------------------------

    def lock_timeline(self, info: FunctionInfo) -> LockTimeline:
        """Acquire/release events of one function in source order."""
        cached = self._lock_timelines.get(info.uid)
        if cached is not None:
            return cached
        events: List[Tuple[Tuple[int, int], str, str]] = []
        for node in walk_own(info.func):
            if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
                continue
            method = node.func.attr
            if method not in ACQUIRE_METHODS and method not in RELEASE_METHODS:
                continue
            site = canonical_site(receiver_text(node.func.value), info.class_name)
            if site is None:
                continue
            kind = "acq" if method in ACQUIRE_METHODS else "rel"
            events.append(((node.lineno, node.col_offset), kind, site))
        events.sort()
        timeline = LockTimeline(events)
        self._lock_timelines[info.uid] = timeline
        return timeline

    def held_through_chain(
        self, chain_sites: Iterable[Tuple[FunctionInfo, Tuple[int, int]]]
    ) -> FrozenSet[str]:
        """Union of lock sites held at each callsite along a chain."""
        held: Set[str] = set()
        for info, (line, col) in chain_sites:
            held.update(self.lock_timeline(info).held_at(line, col))
        return frozenset(held)


def iter_project_functions(project: Project):
    """Deterministic iteration over every function in the project."""
    for uid in sorted(project.functions):
        yield project.functions[uid]
