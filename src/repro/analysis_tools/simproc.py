"""KL-SIM001/KL-SIM002 (no host I/O in sim processes, directly or
transitively) and KL-INV001 (no ``assert`` guards in production code).

A sim process is a generator the kernel resumes between events; a
blocking host call inside one stalls the *entire* simulated world and
ties experiment timing to host state.  KL-SIM001 checks each
generator's own body; KL-SIM002 follows the project call graph, so a
blocking call hidden two helpers down is found and reported with the
chain that reaches it.  ``assert`` guards disappear under ``python -O``
— invariants must raise :class:`repro.errors.InvariantError`.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from repro.analysis_tools.core import (
    LintModule,
    TOOLING_SUBPACKAGES,
    Violation,
    dotted_name,
    is_generator,
    iter_functions,
    register_pass,
    walk_own,
)
from repro.analysis_tools.graph import Project, iter_project_functions

#: The harness drives experiments and prints reports from sim processes
#: on purpose (the obs CLI dashboard); it is exempt from KL-SIM001/002.
_SIM001_EXEMPT = TOOLING_SUBPACKAGES | {"harness"}

_BLOCKING_BARE = {"open", "input", "print", "breakpoint", "exec", "eval"}
_BLOCKING_DOTTED = (
    "time.sleep",
    "os.system",
    "os.popen",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_output",
    "subprocess.Popen",
    "socket.socket",
    "sys.stdout.write",
    "sys.stderr.write",
    "urllib.request.urlopen",
    "requests.get",
    "requests.post",
)


def _blocking_desc(node: ast.AST) -> Optional[str]:
    """The dotted name of a blocking host-I/O call, or None."""
    if not isinstance(node, ast.Call):
        return None
    dotted = dotted_name(node.func)
    if dotted is None:
        return None
    if dotted in _BLOCKING_BARE:
        return dotted
    if any(
        dotted == suffix or dotted.endswith("." + suffix)
        for suffix in _BLOCKING_DOTTED
    ):
        return dotted
    return None


def _blocking_calls(func: ast.FunctionDef) -> List[Tuple[ast.Call, str]]:
    """Every blocking host-I/O call in the function's own body."""
    found = []
    for node in walk_own(func):
        desc = _blocking_desc(node)
        if desc is not None:
            found.append((node, desc))
    found.sort(key=lambda pair: (pair[0].lineno, pair[0].col_offset))
    return found


@register_pass
def sim001_blocking_io(project: Project) -> List[Violation]:
    """KL-SIM001: generator sim processes must not call host I/O."""
    findings = []
    for module in project.modules:
        if module.subpackage in _SIM001_EXEMPT:
            continue
        for _class_name, func in iter_functions(module.tree):
            if not is_generator(func):
                continue
            for node, dotted in _blocking_calls(func):
                findings.append(
                    Violation(
                        "KL-SIM001",
                        str(module.path),
                        node.lineno,
                        node.col_offset,
                        f"sim process `{func.name}` calls blocking "
                        f"host I/O `{dotted}()`",
                    )
                )
    return findings


@register_pass
def sim002_transitive_io(project: Project) -> List[Violation]:
    """KL-SIM002: no host I/O reachable from a sim process, at any depth.

    Every generator in a non-exempt subpackage is treated as a sim
    process root; the project call graph (non-spawn edges — a spawned
    process blocks only itself, and is a root in its own right) is
    walked breadth-first, and a blocking call in any *reached* function
    is reported at the callsite with the chain from the generator.
    Depth-0 findings are KL-SIM001's job and are not duplicated here.
    Each blocking site is reported once, under its shortest chain.
    """
    #: sink position -> (chain, violation ingredients); shortest chain wins
    best: Dict[Tuple[str, int, int], Tuple[Tuple[str, ...], str, str]] = {}
    for info in iter_project_functions(project):
        if not info.is_generator:
            continue
        if info.module.subpackage in _SIM001_EXEMPT:
            continue
        tree = project.reachable_tree(info.uid)
        for reached_uid in sorted(tree):
            if reached_uid == info.uid:
                continue  # own body is KL-SIM001
            reached = project.functions[reached_uid]
            for node, dotted in _blocking_calls(reached.func):
                key = (str(reached.path), node.lineno, node.col_offset)
                chain = project.chain(tree, reached_uid)
                if key in best and len(best[key][0]) <= len(chain):
                    continue
                best[key] = (chain, dotted, info.display)
    findings = []
    for (path, line, col), (chain, dotted, root_display) in sorted(best.items()):
        findings.append(
            Violation(
                "KL-SIM002",
                path,
                line,
                col,
                f"blocking host I/O `{dotted}()` is reachable from sim "
                f"process `{root_display}`",
                trace=chain,
            )
        )
    return findings


@register_pass
def inv001_no_assert(project: Project) -> List[Violation]:
    """KL-INV001: guards must survive ``python -O``."""
    findings = []
    for module in project.modules:
        if module.subpackage in TOOLING_SUBPACKAGES:
            continue
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assert):
                findings.append(
                    Violation(
                        "KL-INV001",
                        str(module.path),
                        node.lineno,
                        node.col_offset,
                        "bare `assert` is stripped by python -O; raise "
                        "repro.errors.InvariantError instead",
                    )
                )
    return findings
