"""KL-SIM001 (no host I/O inside sim processes) and KL-INV001 (no
``assert`` guards in production code).

A sim process is a generator the kernel resumes between events; a
blocking host call inside one stalls the *entire* simulated world and
ties experiment timing to host state.  ``assert`` guards disappear under
``python -O`` — invariants must raise :class:`repro.errors.InvariantError`.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis_tools.core import (
    LintModule,
    TOOLING_SUBPACKAGES,
    Violation,
    dotted_name,
    is_generator,
    iter_functions,
    register_pass,
    walk_own,
)

#: The harness drives experiments and prints reports from sim processes
#: on purpose (the obs CLI dashboard); it is exempt from KL-SIM001.
_SIM001_EXEMPT = TOOLING_SUBPACKAGES | {"harness"}

_BLOCKING_BARE = {"open", "input", "print", "breakpoint", "exec", "eval"}
_BLOCKING_DOTTED = (
    "time.sleep",
    "os.system",
    "os.popen",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_output",
    "subprocess.Popen",
    "socket.socket",
    "sys.stdout.write",
    "sys.stderr.write",
    "urllib.request.urlopen",
    "requests.get",
    "requests.post",
)


@register_pass
def sim001_blocking_io(modules: List[LintModule]) -> List[Violation]:
    """KL-SIM001: generator sim processes must not call host I/O."""
    findings = []
    for module in modules:
        if module.subpackage in _SIM001_EXEMPT:
            continue
        for _class_name, func in iter_functions(module.tree):
            if not is_generator(func):
                continue
            for node in walk_own(func):
                if not isinstance(node, ast.Call):
                    continue
                dotted = dotted_name(node.func)
                if dotted is None:
                    continue
                blocking = (
                    dotted in _BLOCKING_BARE
                    or any(
                        dotted == suffix or dotted.endswith("." + suffix)
                        for suffix in _BLOCKING_DOTTED
                    )
                )
                if blocking:
                    findings.append(
                        Violation(
                            "KL-SIM001",
                            str(module.path),
                            node.lineno,
                            node.col_offset,
                            f"sim process `{func.name}` calls blocking "
                            f"host I/O `{dotted}()`",
                        )
                    )
    return findings


@register_pass
def inv001_no_assert(modules: List[LintModule]) -> List[Violation]:
    """KL-INV001: guards must survive ``python -O``."""
    findings = []
    for module in modules:
        if module.subpackage in TOOLING_SUBPACKAGES:
            continue
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assert):
                findings.append(
                    Violation(
                        "KL-INV001",
                        str(module.path),
                        node.lineno,
                        node.col_offset,
                        "bare `assert` is stripped by python -O; raise "
                        "repro.errors.InvariantError instead",
                    )
                )
    return findings
