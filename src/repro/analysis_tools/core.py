"""kamllint infrastructure: modules, violations, pragmas, rule registry.

Parsing is cached: every ``.py`` file is ``ast.parse``d at most once per
interpreter process (keyed by path + mtime + size), so the whole rule
suite — and repeated ``run_lint`` calls from tests or pre-commit — share
one tree per file.  All passes receive a single :class:`Project`
(see :mod:`repro.analysis_tools.graph`) built once per run, which also
carries the interprocedural call graph the cross-function rules use.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.analysis_tools.graph import Project

#: ``# kamllint: allow[KL-DET001]`` or ``allow[KL-DET001,KL-DET002] why``
_PRAGMA = re.compile(r"#\s*kamllint:\s*(file-)?allow\[([A-Z0-9\-, ]+)\]")

#: Subpackages of ``repro`` whose code runs under the simulated clock.
#: Harness reporting is the only sanctioned wall-clock boundary, and the
#: linter itself is exempt (it is host tooling, not sim code).
TOOLING_SUBPACKAGES = {"analysis_tools"}

#: rule id -> one-line description.  The single source of truth for the
#: rule catalogue: the CLI lists it, ``--rules`` and pragma audits
#: validate against it, and docs/static-analysis.md mirrors it.
RULE_CATALOGUE: Dict[str, str] = {
    "KL-DET001": "no wall-clock reads outside harness.reporting.wallclock()",
    "KL-DET002": "no module-level random.*; inject seeded random.Random",
    "KL-DET003": "no iteration over set-typed values (hash-order leak)",
    "KL-CTX001": "a held TraceContext must be passed to ctx-accepting callees",
    "KL-LCK001": "latch-style locks release in the acquiring function",
    "KL-LCK002": "the static lock-order graph must be acyclic (full call depth)",
    "KL-SIM001": "sim processes (generators) must not call host I/O",
    "KL-SIM002": "no host I/O reachable from a sim process through any call chain",
    "KL-INV001": "no assert guards; raise repro.errors.InvariantError",
    "KL-FLT001": "fault-injection code must not read mapping-table state",
    "KL-OBS001": "span names and component= tags must be in the kamlprof taxonomy",
    "KL-RACE001": "no unlocked cross-process use of shared state across a yield",
    "KL-RES001": "pins and NVRAM reservations release on every path, across calls",
}


class UnknownRuleError(ValueError):
    """A rule id that is not in :data:`RULE_CATALOGUE` was requested."""

    def __init__(self, unknown: Sequence[str]):
        self.unknown = sorted(unknown)
        super().__init__(
            "unknown rule ids: " + ", ".join(self.unknown)
            + " (see --list-rules for the catalogue)"
        )


@dataclass(frozen=True)
class Violation:
    """One finding: a rule id anchored to a file position.

    ``trace`` (optional) is the call chain that establishes the hazard
    for interprocedural rules — outermost frame first, rendered by the
    CLI as ``via: a -> b -> c`` and carried verbatim in ``--json``.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    trace: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
        if self.trace:
            payload["trace"] = list(self.trace)
        return payload

    def render(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
        if self.trace:
            text += "\n    via: " + " -> ".join(self.trace)
        return text


@dataclass(frozen=True)
class PragmaSite:
    """One ``allow[...]`` grant: a (line, rule) pair in one file.

    ``line`` is the pragma comment's own line; 0 for ``file-allow``.
    """

    path: str
    line: int
    rule: str


@dataclass(frozen=True)
class StalePragma:
    """An ``allow[...]`` grant that suppressed nothing in this run."""

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:0: stale-pragma {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass
class LintModule:
    """A parsed source file plus its pragma allowlist."""

    path: Path
    source: str
    tree: ast.Module
    #: line number -> rule ids allowed on that line (and the next one,
    #: so a pragma may sit on the line above a long statement)
    line_allows: Dict[int, Set[str]] = field(default_factory=dict)
    file_allows: Set[str] = field(default_factory=set)
    #: every pragma grant, for the stale-pragma audit
    pragma_sites: List[PragmaSite] = field(default_factory=list)

    @property
    def subpackage(self) -> Optional[str]:
        """The ``repro`` subpackage this file belongs to, if any."""
        parts = self.path.parts
        try:
            anchor = len(parts) - 1 - parts[::-1].index("repro")
        except ValueError:
            return None
        if anchor + 1 < len(parts) - 1:
            return parts[anchor + 1]
        return ""  # directly under repro/

    def allowed(self, rule: str, line: int) -> bool:
        return self.allowing_site(rule, line) is not None

    def allowing_site(self, rule: str, line: int) -> Optional[PragmaSite]:
        """The pragma grant that suppresses ``rule`` at ``line``, if any."""
        if rule in self.file_allows:
            return PragmaSite(str(self.path), 0, rule)
        for pragma_line in (line, line - 1):
            if rule in self.line_allows.get(pragma_line, ()):  # noqa: B007
                return PragmaSite(str(self.path), pragma_line, rule)
        return None


def _parse_pragmas(module: LintModule) -> None:
    for lineno, text in enumerate(module.source.splitlines(), start=1):
        match = _PRAGMA.search(text)
        if match is None:
            continue
        rules = {rule.strip() for rule in match.group(2).split(",") if rule.strip()}
        if match.group(1):  # file-allow
            module.file_allows.update(rules)
            site_line = 0
        else:
            module.line_allows.setdefault(lineno, set()).update(rules)
            site_line = lineno
        for rule in sorted(rules):
            module.pragma_sites.append(PragmaSite(str(module.path), site_line, rule))


# ----------------------------------------------------------------------
# Single-parse AST cache
# ----------------------------------------------------------------------

#: resolved path -> (mtime_ns, size, LintModule).  One ``ast.parse`` per
#: distinct file contents per process, shared by every pass and every
#: ``run_lint`` call; an edited file re-parses because its stat changes.
_MODULE_CACHE: Dict[str, Tuple[int, int, LintModule]] = {}

#: resolved path -> number of actual ``ast.parse`` calls, for tests that
#: assert the single-parse property.
PARSE_COUNTS: Dict[str, int] = {}


def clear_module_cache() -> None:
    """Drop the AST cache (tests use this to measure parse counts)."""
    _MODULE_CACHE.clear()
    PARSE_COUNTS.clear()


def _load_module(file_path: Path) -> LintModule:
    key = str(file_path.resolve())
    stat = file_path.stat()
    cached = _MODULE_CACHE.get(key)
    if cached is not None and cached[0] == stat.st_mtime_ns and cached[1] == stat.st_size:
        return cached[2]
    source = file_path.read_text()
    tree = ast.parse(source, filename=str(file_path))
    PARSE_COUNTS[key] = PARSE_COUNTS.get(key, 0) + 1
    module = LintModule(path=file_path, source=source, tree=tree)
    _parse_pragmas(module)
    _MODULE_CACHE[key] = (stat.st_mtime_ns, stat.st_size, module)
    return module


def load_modules(paths: Sequence[str]) -> List[LintModule]:
    """Load every ``.py`` file under the given files/directories."""
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return [_load_module(file_path) for file_path in files]


#: A rule pass: takes the whole project at once (cross-module rules need
#: the full call graph) and returns raw findings; pragma filtering
#: happens in :func:`run_analysis`.
RulePass = Callable[["Project"], List[Violation]]

_PASSES: List[RulePass] = []


def register_pass(rule_pass: RulePass) -> RulePass:
    _PASSES.append(rule_pass)
    return rule_pass


@dataclass
class LintReport:
    """Everything one analysis run produced."""

    violations: List[Violation]
    stale_pragmas: List[StalePragma]
    module_count: int = 0


def _import_rule_modules() -> None:
    # Importing the rule modules registers their passes.
    from repro.analysis_tools import (  # noqa: F401
        ctxlint,
        determinism,
        faultrules,
        locks,
        obsrules,
        racerules,
        resourcerules,
        simproc,
    )


def validate_rules(rules: Optional[Iterable[str]]) -> Optional[Set[str]]:
    """Normalize a rule filter; raise :class:`UnknownRuleError` on typos."""
    if rules is None:
        return None
    wanted = {rule for rule in rules if rule}
    unknown = [rule for rule in wanted if rule not in RULE_CATALOGUE]
    if unknown:
        raise UnknownRuleError(unknown)
    return wanted


def run_analysis(
    paths: Sequence[str], rules: Optional[Iterable[str]] = None
) -> LintReport:
    """Run every registered pass; returns findings plus the pragma audit.

    The stale-pragma audit reports ``allow[...]`` grants that suppressed
    nothing.  When a ``rules`` filter is active, only grants for the
    selected rules are audited (the others were never evaluated); grants
    naming a rule id missing from the catalogue are always stale.
    """
    from repro.analysis_tools.graph import Project

    _import_rule_modules()
    wanted = validate_rules(rules)
    modules = load_modules(paths)
    project = Project(modules)
    by_path = {str(module.path): module for module in modules}
    findings: List[Violation] = []
    used_sites: Set[PragmaSite] = set()
    for rule_pass in _PASSES:
        for violation in rule_pass(project):
            if wanted is not None and violation.rule not in wanted:
                continue
            module = by_path.get(violation.path)
            if module is not None:
                site = module.allowing_site(violation.rule, violation.line)
                if site is not None:
                    used_sites.add(site)
                    continue
            findings.append(violation)
    findings.sort(key=lambda v: (v.path, v.line, v.col, v.rule))

    stale: List[StalePragma] = []
    for module in modules:
        if module.subpackage in TOOLING_SUBPACKAGES:
            continue  # the linter's own docs/regexes mention pragmas
        for site in module.pragma_sites:
            if site in used_sites:
                continue
            if site.rule not in RULE_CATALOGUE:
                reason = (
                    f"allow[{site.rule}] names a rule id that is not in the "
                    "catalogue; fix the id or drop the pragma"
                )
            elif wanted is not None and site.rule not in wanted:
                continue  # not evaluated under this --rules filter
            else:
                reason = (
                    f"allow[{site.rule}] suppresses nothing; the violation it "
                    "covered is gone — drop the pragma"
                )
            stale.append(StalePragma(site.path, site.line, site.rule, reason))
    stale.sort(key=lambda s: (s.path, s.line, s.rule))
    return LintReport(
        violations=findings, stale_pragmas=stale, module_count=len(modules)
    )


def run_lint(
    paths: Sequence[str], rules: Optional[Iterable[str]] = None
) -> List[Violation]:
    """Back-compat wrapper: pragma-filtered findings only."""
    return run_analysis(paths, rules=rules).violations


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute/name chains; None for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def receiver_text(node: ast.AST) -> Optional[str]:
    """The receiver of ``recv.method(...)``: dotted text of ``recv``.

    Subscripts collapse to their base (``self.logs[i]`` -> ``self.logs``)
    so lock/ctx sites stay stable across index expressions.
    """
    if isinstance(node, ast.Subscript):
        node = node.value
    return dotted_name(node)


def iter_functions(tree: ast.Module):
    """Yield ``(class_name_or_None, FunctionDef)`` for every function."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield None, node
        elif isinstance(node, ast.ClassDef):
            for child in node.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield node.name, child


def walk_own(func: ast.AST):
    """Walk a function's own body, not descending into nested defs."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def is_generator(func: ast.FunctionDef) -> bool:
    """Does this function yield (ignoring nested defs/lambdas)?"""
    return any(
        isinstance(node, (ast.Yield, ast.YieldFrom)) for node in walk_own(func)
    )
