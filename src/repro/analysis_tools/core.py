"""kamllint infrastructure: modules, violations, pragmas, rule registry."""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set

#: ``# kamllint: allow[KL-DET001]`` or ``allow[KL-DET001,KL-SIM001] why``
_PRAGMA = re.compile(r"#\s*kamllint:\s*(file-)?allow\[([A-Z0-9\-, ]+)\]")

#: Subpackages of ``repro`` whose code runs under the simulated clock.
#: Harness reporting is the only sanctioned wall-clock boundary, and the
#: linter itself is exempt (it is host tooling, not sim code).
TOOLING_SUBPACKAGES = {"analysis_tools"}


@dataclass(frozen=True)
class Violation:
    """One finding: a rule id anchored to a file position."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass
class LintModule:
    """A parsed source file plus its pragma allowlist."""

    path: Path
    source: str
    tree: ast.Module
    #: line number -> rule ids allowed on that line (and the next one,
    #: so a pragma may sit on the line above a long statement)
    line_allows: Dict[int, Set[str]] = field(default_factory=dict)
    file_allows: Set[str] = field(default_factory=set)

    @property
    def subpackage(self) -> Optional[str]:
        """The ``repro`` subpackage this file belongs to, if any."""
        parts = self.path.parts
        try:
            anchor = len(parts) - 1 - parts[::-1].index("repro")
        except ValueError:
            return None
        if anchor + 1 < len(parts) - 1:
            return parts[anchor + 1]
        return ""  # directly under repro/

    def allowed(self, rule: str, line: int) -> bool:
        if rule in self.file_allows:
            return True
        for pragma_line in (line, line - 1):
            if rule in self.line_allows.get(pragma_line, ()):  # noqa: B007
                return True
        return False


def _parse_pragmas(module: LintModule) -> None:
    for lineno, text in enumerate(module.source.splitlines(), start=1):
        match = _PRAGMA.search(text)
        if match is None:
            continue
        rules = {rule.strip() for rule in match.group(2).split(",") if rule.strip()}
        if match.group(1):  # file-allow
            module.file_allows.update(rules)
        else:
            module.line_allows.setdefault(lineno, set()).update(rules)


def load_modules(paths: Sequence[str]) -> List[LintModule]:
    """Load every ``.py`` file under the given files/directories."""
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    modules = []
    for file_path in files:
        source = file_path.read_text()
        tree = ast.parse(source, filename=str(file_path))
        module = LintModule(path=file_path, source=source, tree=tree)
        _parse_pragmas(module)
        modules.append(module)
    return modules


#: A rule pass: takes every module at once (cross-module rules need the
#: whole set) and returns raw findings; pragma filtering happens here.
RulePass = Callable[[List[LintModule]], List[Violation]]

_PASSES: List[RulePass] = []


def register_pass(rule_pass: RulePass) -> RulePass:
    _PASSES.append(rule_pass)
    return rule_pass


def run_lint(
    paths: Sequence[str], rules: Optional[Iterable[str]] = None
) -> List[Violation]:
    """Run every registered pass; returns pragma-filtered findings."""
    # Importing the rule modules registers their passes.
    from repro.analysis_tools import (  # noqa: F401
        ctxlint,
        determinism,
        faultrules,
        locks,
        obsrules,
        simproc,
    )

    modules = load_modules(paths)
    by_path = {str(module.path): module for module in modules}
    wanted = set(rules) if rules is not None else None
    findings: List[Violation] = []
    for rule_pass in _PASSES:
        for violation in rule_pass(modules):
            if wanted is not None and violation.rule not in wanted:
                continue
            module = by_path.get(violation.path)
            if module is not None and module.allowed(violation.rule, violation.line):
                continue
            findings.append(violation)
    findings.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return findings


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute/name chains; None for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def receiver_text(node: ast.AST) -> Optional[str]:
    """The receiver of ``recv.method(...)``: dotted text of ``recv``.

    Subscripts collapse to their base (``self.logs[i]`` -> ``self.logs``)
    so lock/ctx sites stay stable across index expressions.
    """
    if isinstance(node, ast.Subscript):
        node = node.value
    return dotted_name(node)


def iter_functions(tree: ast.Module):
    """Yield ``(class_name_or_None, FunctionDef)`` for every function."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield None, node
        elif isinstance(node, ast.ClassDef):
            for child in node.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield node.name, child


def walk_own(func: ast.AST):
    """Walk a function's own body, not descending into nested defs."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def is_generator(func: ast.FunctionDef) -> bool:
    """Does this function yield (ignoring nested defs/lambdas)?"""
    return any(
        isinstance(node, (ast.Yield, ast.YieldFrom)) for node in walk_own(func)
    )
