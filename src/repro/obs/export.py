"""JSON and plaintext exporters for a :class:`MetricsRegistry`.

``to_builtin`` produces a JSON-ready dict; ``to_json`` serialises it.
``to_text`` renders fixed-width tables for terminal reports (the shape
``repro.harness.reporting`` uses).  The export also computes the derived
headline metrics the evaluation cares about — GC write amplification and
cache hit rate — from their raw counters, so a registry dump is directly
comparable across PRs (the CI smoke-bench job uploads one per run).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs.registry import MetricsRegistry


def derived_metrics(registry: MetricsRegistry) -> Dict[str, float]:
    """Headline ratios computed from raw counters (absent inputs -> {})."""
    derived: Dict[str, float] = {}
    host_bytes = registry.total("kaml.log.append_bytes", stream="host")
    gc_bytes = registry.total("kaml.log.append_bytes", stream="gc")
    if host_bytes > 0:
        derived["kaml.gc.write_amplification"] = (host_bytes + gc_bytes) / host_bytes
    hits = registry.total("cache.hits")
    misses = registry.total("cache.misses")
    if hits + misses > 0:
        derived["cache.hit_rate"] = hits / (hits + misses)
    ftl_host = registry.total("ftl.host_write_bytes")
    ftl_gc = registry.total("ftl.gc.relocated_bytes")
    if ftl_host > 0:
        derived["ftl.gc.write_amplification"] = (ftl_host + ftl_gc) / ftl_host
    return derived


def to_builtin(registry: MetricsRegistry, traces: bool = False) -> Dict[str, Any]:
    """The registry as plain dicts/lists, ready for ``json.dump``."""
    counters: Dict[str, Any] = {}
    gauges: Dict[str, Any] = {}
    histograms: Dict[str, Any] = {}
    for instrument in registry.instruments():
        section = {
            "counter": counters,
            "gauge": gauges,
            "histogram": histograms,
        }[instrument.kind]
        section[instrument.key_string()] = instrument.export()
    payload: Dict[str, Any] = {
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
        "derived": derived_metrics(registry),
    }
    if traces:
        payload["traces"] = [record.export() for record in registry.traces]
        payload["dropped_traces"] = registry.dropped_traces
    return payload


def to_json(
    registry: MetricsRegistry, indent: int = 2, traces: bool = False
) -> str:
    return json.dumps(to_builtin(registry, traces=traces), indent=indent, sort_keys=True)


def write_json(
    registry: MetricsRegistry, path: str, traces: bool = False
) -> None:
    with open(path, "w") as handle:
        handle.write(to_json(registry, traces=traces))
        handle.write("\n")


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    if 0.0 < abs(value) < 1e-3:
        # Sub-nanosecond values would render as "0.000"; scientific
        # notation keeps them distinguishable (and stable across runs).
        return f"{value:.3e}"
    return f"{value:.3f}"


def to_text(registry: MetricsRegistry, title: str = "metrics") -> str:
    """Fixed-width plaintext report: counters/gauges, then histogram rows."""
    lines: List[str] = [title, "=" * max(1, len(title))]
    scalar_rows: List[List[str]] = []
    for instrument in registry.instruments():
        if instrument.kind == "counter":
            scalar_rows.append([instrument.key_string(), _fmt(instrument.value)])
        elif instrument.kind == "gauge":
            scalar_rows.append([
                instrument.key_string(),
                f"{_fmt(instrument.value)} (high {_fmt(instrument.high_water)})",
            ])
    if scalar_rows:
        width = max(len(row[0]) for row in scalar_rows)
        lines.extend(f"{name.ljust(width)}  {value}" for name, value in scalar_rows)
    histogram_rows: List[List[str]] = []
    for instrument in registry.instruments():
        if instrument.kind != "histogram":
            continue
        summary = instrument.summary()
        histogram_rows.append([
            instrument.key_string(),
            _fmt(summary["count"]),
            _fmt(summary["mean"]),
            _fmt(summary["p50"]),
            _fmt(summary["p95"]),
            _fmt(summary["p99"]),
            _fmt(summary["max"]),
        ])
    if histogram_rows:
        headers = ["histogram", "count", "mean", "p50", "p95", "p99", "max"]
        widths = [
            max(len(headers[col]), *(len(row[col]) for row in histogram_rows))
            for col in range(len(headers))
        ]
        lines.append("")
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
        lines.append("  ".join("-" * w for w in widths))
        lines.extend(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)) for row in histogram_rows
        )
    derived = derived_metrics(registry)
    if derived:
        lines.append("")
        width = max(len(name) for name in derived)
        lines.extend(f"{name.ljust(width)}  {derived[name]:.4f}" for name in sorted(derived))
    return "\n".join(lines)


def summary_row(
    registry: MetricsRegistry, name: str, **labels
) -> Optional[List[Any]]:
    """One ``[name, count, mean, p50, p95, p99]`` table row, or None."""
    from repro.obs.metrics import labels_key

    instrument = registry.family(name).get(labels_key(labels))
    if instrument is None or instrument.kind != "histogram":
        return None
    summary = instrument.summary()
    return [
        instrument.key_string(),
        summary["count"], summary["mean"],
        summary["p50"], summary["p95"], summary["p99"],
    ]
