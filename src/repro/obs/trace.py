"""Request-scoped tracing and the flight recorder.

The :class:`~repro.obs.registry.MetricsRegistry` answers *how much* and
*how long on average*; this module answers *why was this one command
slow*.  A :class:`TraceContext` is created at a request's entry point
(``libkaml`` cache call, firmware ``Put``/``Get``, a GC pass) and is
threaded explicitly through every layer the request touches.  Each layer
opens :class:`SpanEvent` spans against the context, so a single ``Put``
yields a causally-linked tree::

    kaml.put                      (root: command arrival to mapping install)
      put.phase1                  (host-visible latency: transfer to ack)
        put.transfer
        put.nvram_reserve
        put.index_probe
      put.ack                     (instant: logical commit)
      put.nvram_pin               (NVRAM held: reserve to release)
      put.phase2                  (background: flash programs + installs)
        log.append  [log=3]
        put.install

All times are *simulated* microseconds (the tracer is built with the sim
clock); spans survive process interleaving because parentage is explicit,
never inferred from a global stack across yields.

Completed spans land in a :class:`FlightRecorder` — a bounded ring that
cheaply retains the last N events so the window around any anomaly (an
SLO breach, a GC stall) can be dumped after the fact as JSONL or as a
Chrome ``trace_event`` file loadable in Perfetto / ``chrome://tracing``.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Callable, Dict, Iterable, List, Optional

#: Span phases mirrored into the Chrome export: complete slices and
#: zero-duration instants (GC relocations, Put acks).
PHASE_SPAN = "span"
PHASE_INSTANT = "instant"


class SpanEvent:
    """One span (or instant event) of one trace."""

    __slots__ = (
        "trace_id", "span_id", "parent_id", "name",
        "start_us", "end_us", "tags", "phase",
    )

    def __init__(
        self,
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        start_us: float,
        end_us: Optional[float] = None,
        tags: Optional[Dict[str, Any]] = None,
        phase: str = PHASE_SPAN,
    ):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_us = start_us
        self.end_us = end_us
        self.tags = tags if tags is not None else {}
        self.phase = phase

    @property
    def duration_us(self) -> float:
        return (self.end_us - self.start_us) if self.end_us is not None else 0.0

    def overlaps(self, start_us: float, end_us: float) -> bool:
        """Does this span intersect the closed window [start_us, end_us]?"""
        span_end = self.end_us if self.end_us is not None else self.start_us
        return self.start_us <= end_us and span_end >= start_us

    def export(self) -> Dict[str, Any]:
        """JSONL-ready dict (deterministic through ``json.dumps`` sorting)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "phase": self.phase,
            "start_us": self.start_us,
            "end_us": self.end_us,
            "duration_us": self.duration_us,
            "tags": dict(self.tags),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<SpanEvent {self.name} trace={self.trace_id} span={self.span_id} "
            f"[{self.start_us:.1f}, {self.end_us}]>"
        )


class _OpenSpan:
    """Context manager wrapping one span of a :class:`TraceContext`."""

    __slots__ = ("_ctx", "event")

    def __init__(self, ctx: "TraceContext", event: SpanEvent):
        self._ctx = ctx
        self.event = event

    def __enter__(self) -> SpanEvent:
        return self.event

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None:
            self.event.tags.setdefault("error", type(exc).__name__)
        self._ctx.finish(self.event)
        return None


class TraceContext:
    """One request's identity plus its open-span state.

    Spans parent to the innermost open span *of this context* unless an
    explicit ``parent=`` is given; concurrent sibling work (parallel log
    appends inside one ``Put``) must pass its parent explicitly, because
    sibling generators interleave at yields and a stack would mis-nest
    them.  Contexts are cheap plain objects threaded by argument — never
    ambient/global state — which is what keeps causality exact under the
    simulator's cooperative concurrency.
    """

    __slots__ = ("tracer", "trace_id", "name", "root", "_stack")

    def __init__(self, tracer: "Tracer", trace_id: int, name: str):
        self.tracer = tracer
        self.trace_id = trace_id
        self.name = name
        self.root: Optional[SpanEvent] = None
        self._stack: List[SpanEvent] = []

    # -- span lifecycle --------------------------------------------------

    def begin(
        self,
        name: str,
        parent: Optional[SpanEvent] = None,
        start_us: Optional[float] = None,
        **tags: Any,
    ) -> SpanEvent:
        """Open a span; the caller must :meth:`finish` it."""
        if parent is None and self._stack:
            parent = self._stack[-1]
        event = SpanEvent(
            trace_id=self.trace_id,
            span_id=self.tracer._next_span_id(),
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            start_us=self.tracer.clock() if start_us is None else start_us,
            tags=tags,
        )
        if self.root is None:
            self.root = event
        if parent is None or (self._stack and parent is self._stack[-1]):
            self._stack.append(event)
        return event

    def finish(self, event: SpanEvent, end_us: Optional[float] = None) -> SpanEvent:
        """Close a span and commit it to the flight recorder.

        Idempotent: a span force-closed by :meth:`close` and later
        finished by the process that opened it records exactly once.
        """
        if event.end_us is not None:
            return event
        event.end_us = self.tracer.clock() if end_us is None else end_us
        # Tolerate out-of-order closes: remove wherever it sits.
        for index in range(len(self._stack) - 1, -1, -1):
            if self._stack[index] is event:
                del self._stack[index]
                break
        self.tracer._record(event)
        return event

    def detach(self, event: SpanEvent) -> None:
        """Remove an open span from the implicit-nesting stack without
        finishing it.

        Used when a span is handed off to a background process (a Put's
        phases 2–3 outliving the committing transaction): the owner's
        :meth:`close` must not truncate it, and the background process
        calls :meth:`finish` when the work really ends.
        """
        for index in range(len(self._stack) - 1, -1, -1):
            if self._stack[index] is event:
                del self._stack[index]
                break

    def span(
        self, name: str, parent: Optional[SpanEvent] = None, **tags: Any
    ) -> _OpenSpan:
        """``with ctx.span("put.transfer"): ...`` — span over the body."""
        return _OpenSpan(self, self.begin(name, parent=parent, **tags))

    def record_span(
        self,
        name: str,
        start_us: float,
        end_us: Optional[float] = None,
        parent: Optional[SpanEvent] = None,
        **tags: Any,
    ) -> SpanEvent:
        """Commit an already-elapsed interval (e.g. an NVRAM pin whose
        start predates the process that learns its end)."""
        event = SpanEvent(
            trace_id=self.trace_id,
            span_id=self.tracer._next_span_id(),
            parent_id=(parent or self.root).span_id
            if (parent or self.root) is not None else None,
            name=name,
            start_us=start_us,
            end_us=self.tracer.clock() if end_us is None else end_us,
            tags=tags,
        )
        self.tracer._record(event)
        return event

    def event(
        self, name: str, parent: Optional[SpanEvent] = None, **tags: Any
    ) -> SpanEvent:
        """Zero-duration instant (Put ack, GC relocation of one record)."""
        now = self.tracer.clock()
        if parent is None:
            parent = self._stack[-1] if self._stack else self.root
        instant = SpanEvent(
            trace_id=self.trace_id,
            span_id=self.tracer._next_span_id(),
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            start_us=now,
            end_us=now,
            tags=tags,
            phase=PHASE_INSTANT,
        )
        self.tracer._record(instant)
        return instant

    def close(self) -> None:
        """Finish every span still open on this context (root last)."""
        while self._stack:
            self.finish(self._stack[-1])

    # -- context-manager sugar ------------------------------------------

    def __enter__(self) -> "TraceContext":
        if self.root is None:
            self.begin(self.name)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
        return None


class FlightRecorder:
    """Bounded ring buffer of completed :class:`SpanEvent` records.

    Retention is O(1) per event (a ``deque`` with ``maxlen``); the cost of
    keeping the recorder always-on is two attribute writes per span, so it
    stays enabled even in benchmark runs.  ``window``/``trace`` carve out
    the events around an anomaly after the fact.
    """

    def __init__(self, capacity: int = 16384):
        if capacity <= 0:
            raise ValueError("flight recorder capacity must be positive")
        self.capacity = capacity
        self._events: "deque[SpanEvent]" = deque(maxlen=capacity)
        self.recorded = 0  # total ever recorded, including evicted

    def record(self, event: SpanEvent) -> None:
        self._events.append(event)
        self.recorded += 1

    @property
    def dropped(self) -> int:
        return self.recorded - len(self._events)

    def events(self) -> List[SpanEvent]:
        return list(self._events)

    def window(self, start_us: float, end_us: float) -> List[SpanEvent]:
        """Every retained event overlapping [start_us, end_us]."""
        return [e for e in self._events if e.overlaps(start_us, end_us)]

    def trace(self, trace_id: int) -> List[SpanEvent]:
        """Every retained event of one trace, in completion order."""
        return [e for e in self._events if e.trace_id == trace_id]

    def clear(self) -> None:
        self._events.clear()
        self.recorded = 0

    # -- exports ---------------------------------------------------------

    def to_jsonl(self, events: Optional[Iterable[SpanEvent]] = None) -> str:
        """One sorted-key JSON object per line (diff-friendly)."""
        source = self.events() if events is None else events
        return "\n".join(json.dumps(event.export(), sort_keys=True) for event in source)

    def write_jsonl(self, path: str, events: Optional[Iterable[SpanEvent]] = None) -> None:
        with open(path, "w") as handle:
            text = self.to_jsonl(events)
            if text:
                handle.write(text)
                handle.write("\n")


def chrome_trace(
    events: Iterable[SpanEvent], process_name: str = "repro"
) -> Dict[str, Any]:
    """Events as a Chrome ``trace_event`` JSON object (Perfetto-loadable).

    Complete spans become ``"ph": "X"`` slices and instants become
    ``"ph": "i"`` markers; each trace id gets its own track (``tid``) so
    a request's spans stack vertically in the viewer.  Timestamps are
    already microseconds — the unit ``trace_event`` expects.
    """
    trace_events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": process_name},
        },
    ]
    for event in events:
        common = {
            "name": event.name,
            "cat": event.name.split(".", 1)[0],
            "ts": event.start_us,
            "pid": 1,
            "tid": event.trace_id,
            "args": {
                "span_id": event.span_id,
                "parent_id": event.parent_id,
                **{str(k): v for k, v in event.tags.items()},
            },
        }
        if event.phase == PHASE_INSTANT:
            trace_events.append({**common, "ph": "i", "s": "t"})
        else:
            trace_events.append({**common, "ph": "X", "dur": event.duration_us})
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str, events: Iterable[SpanEvent], process_name: str = "repro"
) -> None:
    with open(path, "w") as handle:
        json.dump(chrome_trace(events, process_name=process_name),
                  handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")


class Tracer:
    """Factory for trace contexts; owns the flight recorder.

    One tracer per simulated stack, created by the stack root alongside
    its :class:`MetricsRegistry` and driven by the same sim clock.  The
    tracer does *not* feed histograms — the registry's explicit
    ``observe`` calls remain the single source of metric truth — it only
    preserves the causal event stream.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        recorder: Optional[FlightRecorder] = None,
        capacity: int = 16384,
    ):
        self.clock = clock if clock is not None else (lambda: 0.0)
        self.recorder = recorder if recorder is not None else FlightRecorder(capacity)
        self.enabled = True
        self._trace_counter = 0
        self._span_counter = 0

    def _next_span_id(self) -> int:
        self._span_counter += 1
        return self._span_counter

    def _record(self, event: SpanEvent) -> None:
        if self.enabled:
            self.recorder.record(event)

    def request(self, name: str, **tags: Any):
        """New trace with an open root span named ``name``.

        When the tracer is disarmed (``enabled = False``) this returns the
        shared :data:`NULL_CONTEXT` instead: no context, no root span, no
        span-id churn — tracing costs one attribute check per request.
        """
        if not self.enabled:
            return NULL_CONTEXT
        self._trace_counter += 1
        ctx = TraceContext(self, self._trace_counter, name)
        ctx.begin(name, **tags)
        return ctx

    # -- post-run reporting ---------------------------------------------

    def summary(self) -> Dict[str, Any]:
        """Per-span-name aggregate over the retained window."""
        by_name: Dict[str, Dict[str, float]] = {}
        for event in self.recorder.events():
            row = by_name.setdefault(event.name, {"count": 0, "total_us": 0.0, "max_us": 0.0})
            row["count"] += 1
            row["total_us"] += event.duration_us
            if event.duration_us > row["max_us"]:
                row["max_us"] = event.duration_us
        for row in by_name.values():
            row["mean_us"] = row["total_us"] / row["count"] if row["count"] else 0.0
        return {
            "spans": by_name,
            "recorded": self.recorder.recorded,
            "retained": len(self.recorder.events()),
            "dropped": self.recorder.dropped,
            "traces": self._trace_counter,
        }


class _NullTags(dict):
    """A tags dict that silently ignores writes (shared by NULL_SPAN)."""

    def __setitem__(self, key: Any, value: Any) -> None:
        return None

    def setdefault(self, key: Any, default: Any = None) -> Any:
        return default

    def update(self, *args: Any, **kwargs: Any) -> None:
        return None


class NullSpan:
    """Inert span returned by :class:`NullContext`.

    Call sites write ``span.tags["key"] = value`` unconditionally; when
    tracing is disarmed those writes land here and vanish.  Keeping the
    shape of :class:`SpanEvent` (ids, times, ``tags``) means hot paths
    never branch on whether tracing is on.
    """

    __slots__ = ()

    trace_id = 0
    span_id = 0
    parent_id: Optional[int] = None
    name = ""
    start_us = 0.0
    end_us: Optional[float] = 0.0
    phase = PHASE_SPAN
    tags: Dict[str, Any] = _NullTags()
    duration_us = 0.0

    def overlaps(self, start_us: float, end_us: float) -> bool:
        return False

    def export(self) -> Dict[str, Any]:
        return {}

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<NullSpan>"


#: Shared inert span: what NULL_CONTEXT hands out instead of SpanEvents.
NULL_SPAN = NullSpan()


class NullContext:
    """No-op stand-in so call sites never branch on ``tracer is None``."""

    trace_id = 0
    #: NULL_SPAN, not None: call sites write ``ctx.root.tags[...]`` without
    #: branching, and a NullSpan parent only ever flows back into this
    #: context's own no-op methods.
    root = NULL_SPAN

    def begin(self, name: str, **kwargs: Any) -> NullSpan:
        return NULL_SPAN

    def finish(self, event: Any, end_us: Optional[float] = None) -> None:
        return None

    def detach(self, event: Any) -> None:
        return None

    def span(self, name: str, **kwargs: Any) -> NullSpan:
        return NULL_SPAN

    def record_span(self, name: str, start_us: float, **kwargs: Any) -> NullSpan:
        return NULL_SPAN

    def event(self, name: str, **kwargs: Any) -> NullSpan:
        return NULL_SPAN

    def close(self) -> None:
        return None

    def __enter__(self) -> "NullContext":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


#: Shared inert context: safe to use as a default anywhere.
NULL_CONTEXT = NullContext()


class NullTracer:
    """Inert tracer for components built without a stack root."""

    enabled = False
    recorder = FlightRecorder(capacity=1)

    def request(self, name: str, **tags: Any) -> NullContext:
        return NULL_CONTEXT

    def summary(self) -> Dict[str, Any]:
        return {"spans": {}, "recorded": 0, "retained": 0, "dropped": 0, "traces": 0}
