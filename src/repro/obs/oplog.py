"""kamltrace: the opt-in op journal (workload capture).

The flight recorder keeps *spans* — why one command was slow.  The op
journal keeps the *op stream itself*: one row per store-level command
(type, namespace, key fingerprint, value size, issue/ack sim-times,
outcome, trace id), which is exactly what the replay engine
(:mod:`repro.workloads.replay`) needs to re-issue a captured workload
against a fresh stack, and what ties an SLO breach back to the concrete
op that breached.

The journal follows the same pay-as-you-go contract as tracing: a stack
starts with :data:`NULL_OPLOG` (one attribute check per command, no
rows, no sim events) and a harness opts in via
``KamlSsd.enable_oplog()``.  Rows stream to a JSONL file (gzipped when
the path ends in ``.gz``) or accumulate in memory; either way the row
count is bounded by ``capacity`` and overflow is *counted*, never
silent — a truncated capture reports how much it lost.

Schema (one JSON object per line, sorted keys)::

    {"op_id": 17, "op": "put", "layer": "ssd", "ns": 1, "key_hash": 42,
     "size": 512, "issue_us": 103.5, "ack_us": 151.0, "outcome": "ok",
     "trace_id": 9, "batch": 16}

``op_id`` is 1-based and monotonically increasing; ``batch`` (puts
only) is the op id of the first record of the same atomic ``Put`` batch
so replay can regroup multi-record batches.  ``key_hash`` is a stable
64-bit key fingerprint; the simulator's integer keys map to themselves,
which is what makes capture -> replay -> capture a bit-identical round
trip (a real deployment would salt-hash here and lose invertibility,
not fidelity of the access pattern).  A header line carrying
``{"kamltrace": 1}`` starts every file; :func:`load_journal` skips it.
"""

from __future__ import annotations

import gzip
import hashlib
import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: Bump when a row's meaning changes; readers refuse newer majors.
SCHEMA_VERSION = 1

_MASK64 = (1 << 64) - 1


def key_fingerprint(key: Any) -> int:
    """Stable 64-bit fingerprint of a key.

    Integer keys (the simulator's native key type) map to themselves so
    a captured journal replays the exact original keys; anything else is
    hashed through blake2b — stable across processes, unlike ``hash()``.
    """
    if isinstance(key, int):
        return key & _MASK64
    digest = hashlib.blake2b(repr(key).encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def _open_for_write(path: str):
    if str(path).endswith(".gz"):
        return gzip.open(path, "wt", encoding="utf-8")
    return open(path, "w", encoding="utf-8")


def _open_for_read(path: str):
    if str(path).endswith(".gz"):
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, "r", encoding="utf-8")


class OpJournalError(Exception):
    """Bad journal configuration or an unreadable/incompatible file."""


class OpJournal:
    """Bounded, optionally streaming capture of the op stream.

    With ``path=None`` rows accumulate in :attr:`rows` (handy for tests
    and for the in-process capture->replay round trip); with a path they
    stream to JSONL (``.gz`` compresses) and :attr:`rows` stays empty.
    Either mode stops recording at ``capacity`` rows and counts the
    overflow in :attr:`dropped` — the journal never grows unbounded and
    never lies about completeness.
    """

    #: Checked by hot paths before building a row (NULL_OPLOG is False).
    enabled = True

    def __init__(self, path: Optional[str] = None, capacity: int = 1 << 20):
        if capacity <= 0:
            raise OpJournalError("op journal capacity must be positive")
        self.path = path
        self.capacity = capacity
        self.recorded = 0
        self.dropped = 0
        self.rows: List[Dict[str, Any]] = []
        self._handle = None
        if path is not None:
            self._handle = _open_for_write(path)
            self._handle.write(
                json.dumps({"kamltrace": SCHEMA_VERSION}, sort_keys=True) + "\n"
            )

    # -- the hot path ----------------------------------------------------

    def record(
        self,
        op: str,
        namespace: Optional[int],
        key: Any,
        size: int,
        issue_us: float,
        ack_us: float,
        outcome: str = "ok",
        trace_id: int = 0,
        layer: str = "ssd",
        **extra: Any,
    ) -> int:
        """Append one row; returns its op id (0 when dropped at capacity)."""
        if self.recorded >= self.capacity:
            self.dropped += 1
            return 0
        self.recorded += 1
        op_id = self.recorded
        row: Dict[str, Any] = {
            "op_id": op_id,
            "op": op,
            "layer": layer,
            "ns": namespace,
            "key_hash": key_fingerprint(key),
            "size": size,
            "issue_us": issue_us,
            "ack_us": ack_us,
            "outcome": outcome,
            "trace_id": trace_id,
        }
        if extra:
            row.update(extra)
        if self._handle is not None:
            self._handle.write(json.dumps(row, sort_keys=True) + "\n")
        else:
            self.rows.append(row)
        return op_id

    def record_batch(
        self,
        op: str,
        entries: Sequence[Tuple[Optional[int], Any, int]],
        issue_us: float,
        ack_us: float,
        outcome: str = "ok",
        trace_id: int = 0,
        layer: str = "ssd",
    ) -> int:
        """One row per ``(namespace, key, size)`` entry of an atomic batch.

        Every row carries ``batch`` = the first row's op id, so replay
        can regroup the batch; returns that head id (0 if the whole
        batch fell past capacity).  A batch straddling the capacity
        boundary records a head and counts the tail as dropped — the
        drop accounting, not the head, is what says the capture is
        incomplete.
        """
        head = 0
        for namespace, key, size in entries:
            op_id = self.record(
                op, namespace, key, size, issue_us, ack_us,
                outcome=outcome, trace_id=trace_id, layer=layer,
                batch=head,
            )
            if head == 0 and op_id:
                # The head row itself carries batch=0 (its id was not
                # known when the row was written); readers normalize
                # batch=0 to the row's own op_id, so the group key is
                # identical in streaming and in-memory modes.
                head = op_id
        return head

    # -- lifecycle / reporting -------------------------------------------

    def close(self) -> None:
        """Flush and close the stream (idempotent; no-op in memory mode)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def counts(self) -> Dict[str, int]:
        return {
            "recorded": self.recorded,
            "dropped": self.dropped,
            "capacity": self.capacity,
        }

    def __enter__(self) -> "OpJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
        return None


class NullOpJournal:
    """Inert journal: the default on every stack (capture off).

    Shares the shape of :class:`OpJournal` so choke points never branch
    beyond one ``enabled`` check; ``record`` returning 0 is the same
    "no op id" value a dropped row yields.
    """

    enabled = False
    recorded = 0
    dropped = 0
    capacity = 0
    path = None
    rows: List[Dict[str, Any]] = []

    def record(self, *args: Any, **kwargs: Any) -> int:
        return 0

    def record_batch(self, *args: Any, **kwargs: Any) -> int:
        return 0

    def close(self) -> None:
        return None

    def counts(self) -> Dict[str, int]:
        return {"recorded": 0, "dropped": 0, "capacity": 0}


#: Shared inert journal — assigned to every stack at construction.
NULL_OPLOG = NullOpJournal()


# ---------------------------------------------------------------------------
# Reading captured journals
# ---------------------------------------------------------------------------

def parse_journal(lines: Iterable[str]) -> List[Dict[str, Any]]:
    """Rows from journal text lines; validates the header if present."""
    rows: List[Dict[str, Any]] = []
    for line_number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except ValueError as exc:
            raise OpJournalError(f"line {line_number}: not JSON: {exc}") from None
        if not isinstance(row, dict):
            raise OpJournalError(f"line {line_number}: expected a JSON object")
        if "kamltrace" in row:
            version = int(row["kamltrace"])
            if version > SCHEMA_VERSION:
                raise OpJournalError(
                    f"journal schema v{version} is newer than this reader "
                    f"(v{SCHEMA_VERSION})"
                )
            continue
        rows.append(row)
    return rows


def load_journal(path: str) -> List[Dict[str, Any]]:
    """All op rows of a journal file (plain or ``.gz``), header stripped."""
    with _open_for_read(path) as handle:
        return parse_journal(handle)


def write_journal(path: str, rows: Iterable[Dict[str, Any]]) -> int:
    """Write pre-built rows (e.g. a synthetic journal) as a journal file.

    Returns the number of rows written.  Used by the synthetic workload
    generators, which emit the capture schema without running a
    simulation.
    """
    count = 0
    with _open_for_write(path) as handle:
        handle.write(
            json.dumps({"kamltrace": SCHEMA_VERSION}, sort_keys=True) + "\n"
        )
        for row in rows:
            handle.write(json.dumps(row, sort_keys=True) + "\n")
            count += 1
    return count


def mix_summary(rows: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Op/layer mix of a journal — the capture report's one-glance view."""
    ops: Dict[str, int] = {}
    layers: Dict[str, int] = {}
    namespaces = set()
    keys = set()
    total_bytes = 0
    first_issue: Optional[float] = None
    last_ack = 0.0
    for row in rows:
        ops[row["op"]] = ops.get(row["op"], 0) + 1
        layer = row.get("layer", "ssd")
        layers[layer] = layers.get(layer, 0) + 1
        namespaces.add(row.get("ns"))
        keys.add(row.get("key_hash"))
        total_bytes += int(row.get("size") or 0)
        issue = row.get("issue_us")
        if issue is not None:
            first_issue = issue if first_issue is None else min(first_issue, issue)
        # Synthetic journals carry ack_us=None (the op never ran); their
        # span is bounded by issue times instead.
        ack = row.get("ack_us")
        if ack is None:
            ack = issue
        if ack is not None:
            last_ack = max(last_ack, ack)
    return {
        "ops": ops,
        "layers": layers,
        "namespaces": sorted(namespaces - {None}),
        "working_set": len(keys),
        "bytes": total_bytes,
        "span_us": (last_ack - first_issue) if first_issue is not None else 0.0,
    }
