"""Sim-time device telemetry: a bounded ring of fixed-interval samples.

The profiler (``repro.obs.profile``) explains single requests; the
time-series collector shows the device breathing — per-channel bus and
per-chip engine utilization, queue depths, NVRAM occupancy, GC debt,
per-namespace op rate and cache hit rate — sampled on a fixed simulated
interval.  This is the raw signal hot-shard detection and diurnal
workload replays will consume.

Pay-as-you-go, like the tracer's ``NULL_CONTEXT`` fast path: nothing is
constructed and no simulation process exists until a harness opts in
(``KamlSsd.enable_timeseries`` / ``repro.harness prof``), so default
runs schedule zero extra events and every determinism digest and
perf-gate ``sim_events`` count is untouched.

Probes are plain zero-argument callables registered by name —
``add_probe`` samples the value as-is (gauges: occupancy, queue depth),
``add_delta_probe`` samples the increase since the previous tick times
an optional scale (monotonic accumulators: busy-microsecond counters
become utilization fractions, op counters become per-interval rates).
The sample ring is bounded; once full, the oldest samples fall out and
``dropped`` counts what was lost — telemetry must never grow without
bound inside a long simulation.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.sim import Environment


class _DeltaProbe:
    """Wraps a monotonic counter into a per-interval delta probe."""

    __slots__ = ("fn", "scale", "prev")

    def __init__(self, fn: Callable[[], float], scale: float):
        self.fn = fn
        self.scale = scale
        self.prev: Optional[float] = None

    def __call__(self) -> float:
        current = float(self.fn())
        delta = 0.0 if self.prev is None else current - self.prev
        self.prev = current
        return delta * self.scale


class TimeSeriesCollector:
    """Fixed-interval sampler over registered probes (simulated time)."""

    def __init__(self, env: Environment, interval_us: float = 1000.0,
                 capacity: int = 4096):
        if interval_us <= 0:
            raise ValueError("interval_us must be positive")
        self.env = env
        self.interval_us = float(interval_us)
        self.capacity = int(capacity)
        self.samples: Deque[Dict[str, float]] = deque(maxlen=self.capacity)
        self.dropped = 0
        self._probes: List[Any] = []  # (name, callable) pairs, sample order
        self._names: Dict[str, bool] = {}
        self._running = False

    # -- probe registry ----------------------------------------------------

    def add_probe(self, name: str, fn: Callable[[], float]) -> None:
        """Sample ``fn()`` as-is each tick (gauges: depth, occupancy)."""
        if name in self._names:
            raise ValueError(f"duplicate time-series probe: {name!r}")
        self._names[name] = True
        self._probes.append((name, fn))

    def add_delta_probe(self, name: str, fn: Callable[[], float],
                        scale: float = 1.0) -> None:
        """Sample the increase of ``fn()`` since the last tick, scaled.

        ``scale=1/interval_us`` turns a busy-microsecond accumulator into
        a utilization fraction; ``scale=1.0`` turns an op counter into an
        ops-per-interval rate.
        """
        self.add_probe(name, _DeltaProbe(fn, scale))

    @property
    def series(self) -> List[str]:
        return [name for name, _fn in self._probes]

    # -- sampling ----------------------------------------------------------

    def sample_now(self) -> Dict[str, float]:
        """Take one sample immediately (the run loop calls this; harness
        code may call it once more after a drain to capture the end state)."""
        row: Dict[str, float] = {"t_us": float(self.env.now)}
        for name, fn in self._probes:
            row[name] = float(fn())
        if len(self.samples) == self.capacity:
            self.dropped += 1
        self.samples.append(row)
        return row

    def start(self) -> None:
        """Launch the sampling process.  Opt-in only: this is the single
        place the collector adds events to the simulation."""
        if self._running:
            return
        self._running = True
        self.env.process(self._run())

    def stop(self) -> None:
        """Stop at the next tick (the pending timeout fires, sees the
        flag, and the process exits without sampling)."""
        self._running = False

    def _run(self) -> Any:
        while self._running:
            yield self.env.timeout(self.interval_us)
            if not self._running:
                return
            self.sample_now()

    # -- export ------------------------------------------------------------

    def to_builtin(self) -> Dict[str, Any]:
        """JSON-ready: schema documented in docs/profiling.md."""
        return {
            "interval_us": self.interval_us,
            "capacity": self.capacity,
            "dropped": self.dropped,
            "series": self.series,
            "samples": list(self.samples),
        }

    def write_json(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_builtin(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-series ``{min, mean, max, last}`` over the retained ring."""
        out: Dict[str, Dict[str, float]] = {}
        for name in self.series:
            values = [row[name] for row in self.samples if name in row]
            if not values:
                continue
            out[name] = {
                "min": min(values),
                "mean": sum(values) / len(values),
                "max": max(values),
                "last": values[-1],
            }
        return out


def install_device_probes(collector: TimeSeriesCollector, ssd: Any) -> None:
    """Register the canonical KAML device probes on ``collector``.

    Duck-typed against :class:`repro.kaml.ssd.KamlSsd` (obs must not
    import the kaml package).  Covers: per-channel bus utilization and
    queue depth, per-chip engine utilization, firmware run-queue depth,
    NVRAM occupancy and reservation back-pressure, per-log free blocks
    (GC debt), and per-namespace Get/Put rates plus cache hit rate.
    """
    interval = collector.interval_us
    util = 1.0 / interval
    for channel in ssd.array.channels:
        collector.add_delta_probe(
            f"chan{channel.index}.bus_util",
            (lambda ch: lambda: ch.bus_busy_us)(channel), scale=util,
        )
        collector.add_probe(
            f"chan{channel.index}.bus_queue",
            (lambda ch: lambda: ch.bus.queue_length)(channel),
        )
        for chip_index, chip in enumerate(channel.chips):
            collector.add_delta_probe(
                f"chan{channel.index}.chip{chip_index}.util",
                (lambda c: lambda: c.stats.busy_us)(chip), scale=util,
            )
    collector.add_probe("firmware.queue", lambda: ssd.firmware.queue_depth)
    collector.add_probe("nvram.used_bytes", lambda: ssd.nvram.used_bytes)
    collector.add_probe(
        "nvram.pending_reservations", lambda: ssd.nvram.pending_reservations
    )
    for log in ssd.logs:
        collector.add_probe(
            f"log{log.log_id}.free_blocks",
            (lambda lg: lambda: lg.free_blocks)(log),
        )
    metrics = ssd.metrics

    def _cache_hit_rate() -> float:
        hits = metrics.total("cache.hits")
        misses = metrics.total("cache.misses")
        return hits / (hits + misses) if hits + misses > 0 else 0.0

    collector.add_probe("cache.hit_rate", _cache_hit_rate)
    for namespace_id in sorted(ssd.namespaces):
        collector.add_delta_probe(
            f"ns{namespace_id}.gets",
            (lambda ns: lambda: metrics.total("kaml.ssd.gets", namespace=ns))(
                namespace_id
            ),
        )
        collector.add_delta_probe(
            f"ns{namespace_id}.put_bytes",
            (lambda ns: lambda: metrics.total("kaml.put.bytes", namespace=ns))(
                namespace_id
            ),
        )
