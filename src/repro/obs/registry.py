"""The metrics registry: one source of truth per simulated stack.

A :class:`MetricsRegistry` owns every instrument of one system under
test (a KAML SSD plus its caching layer, or a baseline block device).
Components reach it through their stack root (``ssd.metrics``,
``device.ftl.metrics``) so benchmarks, tests, and exporters all read the
same numbers.

Spans measure *simulated* time: the registry is constructed with a clock
callable (``lambda: env.now``), never the wall clock.  ``with
registry.span("ftl.gc.relocate"):`` records the elapsed sim-time into a
histogram of the same name and appends a trace record with parent
linkage, so nested spans reconstruct where a command's latency went.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    Instrument,
    LabelsKey,
    labels_key,
)


@dataclass
class SpanRecord:
    """One completed (or open) span in the trace buffer."""

    name: str
    labels: Dict[str, object] = field(default_factory=dict)
    start_us: float = 0.0
    end_us: Optional[float] = None
    parent: Optional["SpanRecord"] = None
    depth: int = 0

    @property
    def duration_us(self) -> float:
        return (self.end_us - self.start_us) if self.end_us is not None else 0.0

    def export(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "start_us": self.start_us,
            "end_us": self.end_us,
            "duration_us": self.duration_us,
            "parent": self.parent.name if self.parent is not None else None,
            "depth": self.depth,
        }


class _Span:
    """Context manager returned by :meth:`MetricsRegistry.span`."""

    __slots__ = ("_registry", "record")

    def __init__(self, registry: "MetricsRegistry", record: SpanRecord):
        self._registry = registry
        self.record = record

    def __enter__(self) -> SpanRecord:
        self._registry._open_span(self.record)
        return self.record

    def __exit__(self, exc_type, exc, tb) -> None:
        self._registry._close_span(self.record)
        return None


class MetricsRegistry:
    """Named, labelled instruments plus a sim-time span/trace API."""

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        max_trace_records: int = 10_000,
    ):
        self.clock = clock if clock is not None else (lambda: 0.0)
        self._instruments: Dict[Tuple[str, LabelsKey], Instrument] = {}
        self._kinds: Dict[str, str] = {}
        self.max_trace_records = max_trace_records
        self.traces: List[SpanRecord] = []
        self.dropped_traces = 0
        #: Open spans, innermost last.  The simulation kernel interleaves
        #: processes only at yields, so spans that do not yield nest
        #: perfectly; spans enclosing yields may close out of LIFO order,
        #: which is tolerated (parentage is fixed at enter time).
        self._span_stack: List[SpanRecord] = []

    # ------------------------------------------------------------------
    # Instrument access (create-on-first-use)
    # ------------------------------------------------------------------

    def _get(self, factory, name: str, labels: Dict[str, object], **kwargs) -> Instrument:
        key = (name, labels_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            kind = self._kinds.get(name)
            if kind is not None and kind != factory.kind:
                raise ValueError(
                    f"metric {name!r} already registered as a {kind}, "
                    f"not a {factory.kind}"
                )
            self._kinds[name] = factory.kind
            instrument = factory(name, key[1], **kwargs)
            self._instruments[key] = instrument
        elif instrument.kind != factory.kind:
            raise ValueError(
                f"metric {name!r} already registered as a {instrument.kind}, "
                f"not a {factory.kind}"
            )
        return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None, **labels
    ) -> Histogram:
        if buckets is not None:
            return self._get(Histogram, name, labels, buckets=buckets)
        return self._get(Histogram, name, labels)

    def observe(self, name: str, value: float, **labels) -> None:
        """Shorthand for ``histogram(name, **labels).observe(value)``."""
        self.histogram(name, **labels).observe(value)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def instruments(self, prefix: str = "") -> Iterator[Instrument]:
        """All instruments whose name starts with ``prefix``, sorted."""
        for (name, _labels), instrument in sorted(self._instruments.items()):
            if name.startswith(prefix):
                yield instrument

    def family(self, name: str) -> Dict[LabelsKey, Instrument]:
        """Every labelled instrument of one metric name."""
        return {
            labels: instrument
            for (metric, labels), instrument in self._instruments.items()
            if metric == name
        }

    def value(self, name: str, **labels) -> float:
        """Scalar value of a counter/gauge, 0.0 if never touched."""
        instrument = self._instruments.get((name, labels_key(labels)))
        return instrument.value if instrument is not None else 0.0

    def total(self, name: str, **labels) -> float:
        """Sum of a counter family's values across every label set whose
        labels are a superset of ``labels`` (e.g. all namespaces)."""
        want = set(labels.items())
        result = 0.0
        for instrument in self.family(name).values():
            if want <= set(instrument.labels):
                result += instrument.value
        return result

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------

    def span(self, name: str, **labels) -> _Span:
        """Sim-time span: ``with registry.span("kaml.put.phase1_us"): ...``

        On exit the elapsed simulated time is observed into the histogram
        named ``name`` (same labels) and the span lands in the trace
        buffer with its parent at enter time.
        """
        return _Span(self, SpanRecord(name=name, labels=dict(labels)))

    def _open_span(self, record: SpanRecord) -> None:
        record.start_us = self.clock()
        if self._span_stack:
            record.parent = self._span_stack[-1]
            record.depth = record.parent.depth + 1
        self._span_stack.append(record)
        if len(self.traces) < self.max_trace_records:
            self.traces.append(record)
        else:
            self.dropped_traces += 1

    def _close_span(self, record: SpanRecord) -> None:
        record.end_us = self.clock()
        # Tolerate out-of-LIFO closes from interleaved sim processes.
        for index in range(len(self._span_stack) - 1, -1, -1):
            if self._span_stack[index] is record:
                del self._span_stack[index]
                break
        self.histogram(record.name, **record.labels).observe(record.duration_us)

    @property
    def active_spans(self) -> List[SpanRecord]:
        return list(self._span_stack)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Drop every instrument and trace (benchmark warmup boundary)."""
        self._instruments.clear()
        self._kinds.clear()
        self.traces.clear()
        self.dropped_traces = 0
        self._span_stack.clear()
