"""Metric primitives: counters, gauges, histograms, and shared percentile math.

Every instrument belongs to a :class:`~repro.obs.registry.MetricsRegistry`
and is identified by a *name* plus a *label set* (``namespace=3``,
``log=7``, ``channel=0`` ...).  Instruments with the same name but
different labels form a family: per-namespace bandwidth, per-log append
counts, and per-channel queue depths are all one family each, split by
label.

Naming convention (see docs/internals.md, "Observability"):

* dotted lowercase paths, ``<layer>.<component>.<measure>``
  (``kaml.put.phase1_us``, ``cache.hit``, ``ftl.gc.erased_blocks``);
* time-valued histograms end in ``_us`` (simulated microseconds);
* byte-valued counters end in ``_bytes``.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Tuple

LabelsKey = Tuple[Tuple[str, object], ...]


def labels_key(labels: Dict[str, object]) -> LabelsKey:
    """Canonical, hashable form of a label mapping."""
    if not labels:
        return ()
    return tuple(sorted(labels.items()))


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Linearly interpolated percentile of pre-sorted ``sorted_values``.

    Nearest-rank via ``round()`` misreports tail percentiles on small
    samples (p99 of 100 points lands on the 99th value instead of
    interpolating toward the max); this is the one shared implementation
    used by :meth:`Histogram.summary` and ``repro.analysis.stats``.
    """
    if not sorted_values:
        return 0.0
    if fraction <= 0.0:
        return float(sorted_values[0])
    if fraction >= 1.0:
        return float(sorted_values[-1])
    rank = fraction * (len(sorted_values) - 1)
    lower = int(rank)
    upper = min(lower + 1, len(sorted_values) - 1)
    weight = rank - lower
    return sorted_values[lower] + (sorted_values[upper] - sorted_values[lower]) * weight


#: Default histogram bucket upper bounds, in the unit of the observed
#: value (microseconds for ``_us`` histograms).  Roughly logarithmic,
#: spanning sub-microsecond firmware steps to multi-millisecond GC stalls.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1_000.0, 2_000.0, 5_000.0, 10_000.0, 50_000.0, 100_000.0,
)


class Instrument:
    """Base class: a named, labelled metric."""

    kind = "instrument"

    __slots__ = ("name", "labels")

    def __init__(self, name: str, labels: LabelsKey = ()):
        self.name = name
        self.labels = labels

    @property
    def label_dict(self) -> Dict[str, object]:
        return dict(self.labels)

    def key_string(self) -> str:
        """``name{k=v,...}`` identity used by the exporters."""
        if not self.labels:
            return self.name
        inner = ",".join(f"{k}={v}" for k, v in self.labels)
        return f"{self.name}{{{inner}}}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.key_string()}>"


class Counter(Instrument):
    """A monotonically increasing count (events, bytes, records)."""

    kind = "counter"

    __slots__ = ("value",)

    def __init__(self, name: str, labels: LabelsKey = ()):
        super().__init__(name, labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount

    def export(self) -> Dict[str, object]:
        return {"value": self.value}


class Gauge(Instrument):
    """A value that goes up and down; tracks its high-water mark."""

    kind = "gauge"

    __slots__ = ("value", "high_water")

    def __init__(self, name: str, labels: LabelsKey = ()):
        super().__init__(name, labels)
        self.value = 0.0
        self.high_water = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.high_water:
            self.high_water = value

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.set(self.value - amount)

    def export(self) -> Dict[str, object]:
        return {"value": self.value, "high_water": self.high_water}


class Histogram(Instrument):
    """Fixed-bucket histogram that also keeps raw samples for percentiles.

    Bucket counts give the coarse shape cheaply; the retained samples give
    exact interpolated percentiles.  Simulation runs are small enough that
    retaining samples is fine; ``max_samples`` caps memory for pathological
    runs (beyond it, bucket counts and running aggregates stay exact while
    percentiles come from the first ``max_samples`` observations).
    """

    kind = "histogram"

    __slots__ = (
        "bounds", "bucket_counts", "count", "total",
        "min_value", "max_value", "_samples", "_sorted", "max_samples",
    )

    def __init__(
        self,
        name: str,
        labels: LabelsKey = (),
        buckets: Optional[Sequence[float]] = None,
        max_samples: int = 200_000,
    ):
        super().__init__(name, labels)
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram {name} bucket bounds must be sorted")
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # +1 overflow bucket
        self.count = 0
        self.total = 0.0
        self.min_value = float("inf")
        self.max_value = float("-inf")
        self._samples: List[float] = []
        self._sorted = True
        self.max_samples = max_samples

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        if len(self._samples) < self.max_samples:
            if self._samples and value < self._samples[-1]:
                self._sorted = False
            self._samples.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def _sorted_samples(self) -> List[float]:
        if not self._sorted:
            self._samples.sort()
            self._sorted = True
        return self._samples

    def percentile(self, fraction: float) -> float:
        return percentile(self._sorted_samples(), fraction)

    def summary(self) -> Dict[str, float]:
        """Count/mean/min/max plus interpolated p50/p95/p99."""
        if not self.count:
            return {
                "count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
                "p50": 0.0, "p95": 0.0, "p99": 0.0,
            }
        values = self._sorted_samples()
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min_value,
            "max": self.max_value,
            "p50": percentile(values, 0.50),
            "p95": percentile(values, 0.95),
            "p99": percentile(values, 0.99),
        }

    def export(self) -> Dict[str, object]:
        data = dict(self.summary())
        data["buckets"] = {
            "le": list(self.bounds),
            "counts": list(self.bucket_counts),
        }
        return data
