"""Differential run attribution: what regressed, and which component owns it.

Given two run reports — ``harness prof`` JSON artifacts, perf-gate
baseline documents, or anything carrying breakdown fractions — this
module computes the per-component shift in where request time goes, the
shift in SLO percentiles, and the shift in telemetry series means, then
aggregates significant component shifts by owning subsystem into a
ranked suspect list.  ``harness diff`` is the CLI front end; the perf
gate (:mod:`repro.harness.baseline`) ships the same report as a CI
artifact whenever it fails, so a red gate arrives with its own first
round of triage attached.

All thresholds are explicit and reported back (``noise_pp`` for
breakdown shifts in percentage points, ``noise_rel``/``floor_us`` for
percentile shifts), because the honest answer to "did this move?" on a
stochastic simulation is always relative to a noise model.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.profile import breakdown_fractions

#: Which subsystem owns each kamlprof component — the attribution step
#: that turns "nand_wait grew 6pp" into "look at flash.chip".
COMPONENT_OWNERS: Dict[str, str] = {
    "host_transfer": "ssd.interconnect",
    "cache_cpu": "cache.buffer",
    "firmware_cpu": "ssd.firmware",
    "index_cpu": "kaml.namespace.index",
    "lock_wait": "cache.locks",
    "nvram_wait": "ssd.nvram",
    "nvram_pin": "ssd.nvram",
    "log_append": "kaml.log",
    "bus_wait": "flash.channel",
    "bus_transfer": "flash.channel",
    "nand_wait": "flash.chip",
    "nand_read": "flash.chip",
    "nand_program": "flash.chip",
    "nand_erase": "flash.chip",
    "gc_wait": "kaml.gc",
    "background": "kaml.put.background",
    "cluster": "cluster.serving",
    "other": "unattributed",
}

#: Default significance threshold for breakdown shifts, in percentage
#: points.  Two seeds of the same workload stay within this.
DEFAULT_NOISE_PP = 2.0

#: Default relative + absolute noise floor for latency percentiles.
DEFAULT_NOISE_REL = 0.25
DEFAULT_FLOOR_US = 1.0

_PERCENTILE_FIELDS = ("p50", "p99", "p999", "count")


def _fractions_of(report: Dict[str, Any]) -> Dict[str, float]:
    """Extract flat ``{"op/ns=N/component": fraction}`` from any report form.

    Accepts a full ``harness prof`` report (``requests`` key), the perf
    baseline document (``breakdown.fractions``), or an already-flat
    ``{"fractions": ...}`` mapping.
    """
    if "requests" in report:
        return breakdown_fractions(report)
    breakdown = report.get("breakdown")
    if isinstance(breakdown, dict) and "fractions" in breakdown:
        return dict(breakdown["fractions"])
    if "fractions" in report:
        return dict(report["fractions"])
    return {}


def _slo_of(report: Dict[str, Any]) -> Dict[str, Dict[str, float]]:
    """Extract SLO percentile series from either report form."""
    slo = report.get("slo")
    if isinstance(slo, dict):
        return {str(k): dict(v) for k, v in slo.items() if isinstance(v, dict)}
    latency = report.get("latency_p99_us")
    if isinstance(latency, dict):
        # Baseline form carries only p99 per series; synthesize rows.
        return {str(k): {"p99": float(v)} for k, v in latency.items()}
    return {}


def _telemetry_of(report: Dict[str, Any]) -> Dict[str, float]:
    """Mean of each telemetry series.

    Accepts the :meth:`TimeSeriesCollector.to_builtin` shape
    (``{"series": [names], "samples": [{name: value, ...}]}``) or a
    pre-summarized ``{"summary": {name: {"mean": ...}}}`` mapping.
    """
    telemetry = report.get("telemetry")
    if not isinstance(telemetry, dict):
        return {}
    summary = telemetry.get("summary")
    if isinstance(summary, dict):
        return {
            str(name): float(row["mean"])
            for name, row in sorted(summary.items())
            if isinstance(row, dict) and "mean" in row
        }
    names = telemetry.get("series")
    samples = telemetry.get("samples")
    if not isinstance(names, list) or not isinstance(samples, list):
        return {}
    means: Dict[str, float] = {}
    for name in sorted(names):
        values = [row[name] for row in samples if isinstance(row, dict) and name in row]
        if values:
            means[str(name)] = sum(values) / len(values)
    return means


def _component_of_key(key: str) -> str:
    """``"kaml.get/ns=1/nand_wait"`` -> ``"nand_wait"``."""
    return key.rsplit("/", 1)[-1]


def diff_fractions(
    a: Dict[str, float],
    b: Dict[str, float],
    noise_pp: float = DEFAULT_NOISE_PP,
) -> List[Dict[str, Any]]:
    """Per-key breakdown shifts, ranked by absolute percentage points."""
    rows: List[Dict[str, Any]] = []
    for key in sorted(set(a) | set(b)):
        fraction_a = float(a.get(key, 0.0))
        fraction_b = float(b.get(key, 0.0))
        shift_pp = (fraction_b - fraction_a) * 100.0
        component = _component_of_key(key)
        rows.append({
            "key": key,
            "component": component,
            "owner": COMPONENT_OWNERS.get(component, "unattributed"),
            "a": fraction_a,
            "b": fraction_b,
            "shift_pp": shift_pp,
            "significant": abs(shift_pp) > noise_pp,
        })
    rows.sort(key=lambda row: (-abs(row["shift_pp"]), row["key"]))
    return rows


def diff_percentiles(
    a: Dict[str, Dict[str, float]],
    b: Dict[str, Dict[str, float]],
    noise_rel: float = DEFAULT_NOISE_REL,
    floor_us: float = DEFAULT_FLOOR_US,
) -> List[Dict[str, Any]]:
    """Per-series percentile shifts; significance is relative + floored."""
    rows: List[Dict[str, Any]] = []
    for series in sorted(set(a) | set(b)):
        row_a = a.get(series, {})
        row_b = b.get(series, {})
        for field in _PERCENTILE_FIELDS:
            if field not in row_a and field not in row_b:
                continue
            value_a = float(row_a.get(field, 0.0))
            value_b = float(row_b.get(field, 0.0))
            delta = value_b - value_a
            scale = max(abs(value_a), floor_us)
            rel = delta / scale
            rows.append({
                "series": series,
                "field": field,
                "a": value_a,
                "b": value_b,
                "delta": delta,
                "rel": rel,
                "significant": (
                    field != "count"
                    and abs(rel) > noise_rel
                    and abs(delta) > floor_us
                ),
            })
    rows.sort(key=lambda row: (-abs(row["rel"]), row["series"], row["field"]))
    return rows


def diff_telemetry(
    a: Dict[str, float],
    b: Dict[str, float],
    noise_rel: float = DEFAULT_NOISE_REL,
) -> List[Dict[str, Any]]:
    """Shift in each telemetry series mean between the two runs."""
    rows: List[Dict[str, Any]] = []
    for name in sorted(set(a) | set(b)):
        mean_a = float(a.get(name, 0.0))
        mean_b = float(b.get(name, 0.0))
        delta = mean_b - mean_a
        scale = max(abs(mean_a), 1e-9)
        rel = delta / scale
        rows.append({
            "series": name,
            "a": mean_a,
            "b": mean_b,
            "delta": delta,
            "rel": rel,
            "significant": abs(rel) > noise_rel and mean_a != 0.0,
        })
    rows.sort(key=lambda row: (-abs(row["rel"]), row["series"]))
    return rows


def diff_reports(
    report_a: Dict[str, Any],
    report_b: Dict[str, Any],
    noise_pp: float = DEFAULT_NOISE_PP,
    noise_rel: float = DEFAULT_NOISE_REL,
    floor_us: float = DEFAULT_FLOOR_US,
) -> Dict[str, Any]:
    """Full differential report between two runs (A = reference, B = new).

    Returns component shifts, SLO shifts, telemetry shifts, and a
    ``suspects`` list: significant component shifts aggregated by owning
    subsystem, ranked by total absolute percentage points moved.
    """
    components = diff_fractions(
        _fractions_of(report_a), _fractions_of(report_b), noise_pp=noise_pp
    )
    slo = diff_percentiles(
        _slo_of(report_a), _slo_of(report_b),
        noise_rel=noise_rel, floor_us=floor_us,
    )
    telemetry = diff_telemetry(
        _telemetry_of(report_a), _telemetry_of(report_b), noise_rel=noise_rel
    )

    by_owner: Dict[str, Dict[str, Any]] = {}
    for row in components:
        if not row["significant"]:
            continue
        entry = by_owner.setdefault(
            row["owner"],
            {"owner": row["owner"], "total_shift_pp": 0.0,
             "max_shift_pp": 0.0, "keys": []},
        )
        entry["total_shift_pp"] += abs(row["shift_pp"])
        if abs(row["shift_pp"]) > abs(entry["max_shift_pp"]):
            entry["max_shift_pp"] = row["shift_pp"]
        entry["keys"].append(row["key"])
    suspects = sorted(
        by_owner.values(),
        key=lambda entry: (-entry["total_shift_pp"], entry["owner"]),
    )

    significant = (
        bool(suspects)
        or any(row["significant"] for row in slo)
        or any(row["significant"] for row in telemetry)
    )
    return {
        "components": components,
        "slo": slo,
        "telemetry": telemetry,
        "suspects": suspects,
        "significant": significant,
        "thresholds": {
            "noise_pp": noise_pp,
            "noise_rel": noise_rel,
            "floor_us": floor_us,
        },
    }


def markdown_diff(report: Dict[str, Any], title: str = "Differential run report") -> str:
    """Render a diff report as GitHub-flavored markdown (step summaries)."""
    lines = [f"### {title}", ""]
    thresholds = report.get("thresholds", {})
    suspects = report.get("suspects", [])
    if suspects:
        lines.append("**Suspects (owner, ranked by total breakdown shift):**")
        lines.append("")
        lines.append("| owner | total shift (pp) | worst shift (pp) | keys |")
        lines.append("|---|---:|---:|---|")
        for entry in suspects:
            keys = ", ".join(entry["keys"][:4])
            if len(entry["keys"]) > 4:
                keys += f", +{len(entry['keys']) - 4} more"
            lines.append(
                f"| {entry['owner']} | {entry['total_shift_pp']:.2f} "
                f"| {entry['max_shift_pp']:+.2f} | {keys} |"
            )
    else:
        noise = thresholds.get("noise_pp", DEFAULT_NOISE_PP)
        lines.append(
            f"No component shift above the {noise:.1f} pp noise threshold."
        )
    lines.append("")

    moved = [row for row in report.get("components", []) if row["significant"]]
    if moved:
        lines.append("**Component shifts above noise:**")
        lines.append("")
        lines.append("| request/component | A | B | shift (pp) | owner |")
        lines.append("|---|---:|---:|---:|---|")
        for row in moved[:12]:
            lines.append(
                f"| {row['key']} | {row['a']:.3f} | {row['b']:.3f} "
                f"| {row['shift_pp']:+.2f} | {row['owner']} |"
            )
        lines.append("")

    slo_moved = [row for row in report.get("slo", []) if row["significant"]]
    if slo_moved:
        lines.append("**SLO percentile shifts above noise:**")
        lines.append("")
        lines.append("| series | field | A (us) | B (us) | delta |")
        lines.append("|---|---|---:|---:|---:|")
        for row in slo_moved[:12]:
            lines.append(
                f"| {row['series']} | {row['field']} | {row['a']:.2f} "
                f"| {row['b']:.2f} | {row['rel']:+.1%} |"
            )
        lines.append("")

    telemetry_moved = [
        row for row in report.get("telemetry", []) if row["significant"]
    ]
    if telemetry_moved:
        lines.append("**Telemetry series mean shifts above noise:**")
        lines.append("")
        lines.append("| series | A | B | delta |")
        lines.append("|---|---:|---:|---:|")
        for row in telemetry_moved[:12]:
            lines.append(
                f"| {row['series']} | {row['a']:.3f} | {row['b']:.3f} "
                f"| {row['rel']:+.1%} |"
            )
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
