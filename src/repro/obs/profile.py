"""kamlprof: critical-path latency attribution over finished span trees.

The tracer (``repro.obs.trace``) records *what happened*; this module
answers *where the time went*.  It rebuilds each trace's span tree from
the flight recorder's flat event stream and attributes every request's
latency to a small registered component taxonomy — lock wait, NVRAM
back-pressure, log append, channel-bus arbitration, NAND pulses, GC
interference, cache/index CPU — with three invariants:

* **Exact accounting.**  Per request, the component times sum to the
  host-visible window exactly: a span's self-time is its window minus
  whatever its children claim, so nothing is counted twice and nothing
  is lost (the residue lands in the span's own component).
* **Concurrent siblings never double-count.**  Children claim time from
  the parent's window in deterministic ``(start_us, span_id)`` order;
  a later sibling only gets the parts of its interval that earlier
  siblings left unclaimed.
* **Background stays background.**  A two-phase Put detaches its root
  span and finishes phases 2/3 after the ack.  The host-visible window
  for a ``kaml.put`` is its ``put.phase1`` child; detached phase-2/3
  spans (and the NVRAM pin they hold) are clipped out of the request
  breakdown and reported under ``background`` instead.

Everything here is a pure function of the recorded events (simulated
time only), so a fixed seed produces a bit-identical breakdown — which
is what lets ``benchmarks/baseline.json`` pin component fractions and
the perf gate fail on a bottleneck *shift*.

The collapsed-stack export (``collapsed_stacks``) is the standard
``flamegraph.pl`` / speedscope input: one ``a;b;c <weight>`` line per
unique stack, weighted by integer nanoseconds of self-time.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.metrics import percentile
from repro.obs.trace import SpanEvent

#: The registered component taxonomy.  kamllint's KL-OBS001 checks that
#: every ``component=`` tag in the tree names one of these.
COMPONENTS: Dict[str, str] = {
    "host_transfer": "host interconnect transfer (link + data copies)",
    "cache_cpu": "host-side cache/store CPU (probe, install, txn bookkeeping)",
    "firmware_cpu": "controller dispatch + firmware execution contexts",
    "index_cpu": "mapping-table probe/insert CPU",
    "lock_wait": "key/LBA lock acquisition wait",
    "nvram_wait": "NVRAM reservation back-pressure wait",
    "nvram_pin": "NVRAM pin held across Put phase 2/3",
    "log_append": "log staging + packed-page program wait",
    "bus_wait": "channel-bus arbitration wait",
    "bus_transfer": "channel-bus data transfer",
    "nand_wait": "chip engine arbitration wait",
    "nand_read": "NAND cell read (t_R)",
    "nand_program": "NAND page program (t_PROG)",
    "nand_erase": "NAND block erase (t_BERS)",
    "gc_wait": "garbage-collection interference",
    "background": "Put phase 2/3 work outside the host-visible window",
    "cluster": "serving-tier routing, queueing, 2PC, and rebalancing",
    "other": "residual / unattributed",
}

#: Every span name the stack is allowed to emit, mapped to the component
#: its *self-time* bills to.  kamllint's KL-OBS001 checks that every
#: span-producing call site uses a name registered here, so the
#: attribution below can never silently lump a new choke point into
#: ``other``.
SPAN_COMPONENTS: Dict[str, str] = {
    # Host-side store / cache layer.
    "store.get": "cache_cpu",
    "store.put": "cache_cpu",
    "store.txn.read": "cache_cpu",
    "store.txn.read_for_update": "cache_cpu",
    "store.txn.commit": "cache_cpu",
    "cache.read": "cache_cpu",
    "lock.acquire": "lock_wait",
    # KAML two-phase Put pipeline.
    "kaml.put": "firmware_cpu",
    "put.phase1": "firmware_cpu",
    "put.ack": "firmware_cpu",
    "put.transfer": "host_transfer",
    "put.nvram_reserve": "nvram_wait",
    "put.index_probe": "index_cpu",
    "put.phase2": "background",
    "put.install": "background",
    "put.nvram_pin": "nvram_pin",
    "log.append": "log_append",
    # KAML Get pipeline.
    "kaml.get": "firmware_cpu",
    "get.dispatch": "firmware_cpu",
    "get.index_probe": "index_cpu",
    "get.flash_read": "nand_read",
    "get.transfer": "host_transfer",
    # Baseline page FTL.
    "ftl.read": "firmware_cpu",
    "ftl.write": "firmware_cpu",
    "ftl.flash_read": "nand_read",
    "ftl.rmw_read": "nand_read",
    "ftl.lba_lock_wait": "lock_wait",
    "ftl.nvram_reserve": "nvram_wait",
    "ftl.gc": "gc_wait",
    # Garbage collection / recovery / device housekeeping.
    "kaml.gc": "gc_wait",
    "gc.clean_block": "gc_wait",
    "gc.pin_wait": "gc_wait",
    "gc.relocate": "gc_wait",
    "gc.relocate_block": "gc_wait",
    "gc.erase": "nand_erase",
    "kaml.recover": "firmware_cpu",
    "recover.scan": "firmware_cpu",
    "recover.batch_replayed": "firmware_cpu",
    "recover.prepare_preserved": "firmware_cpu",
    "kaml.flash_fault": "other",
    "kaml.flash_program": "nand_program",
    # Device-level choke points (channel bus, chip engine, firmware).
    "bus.wait": "bus_wait",
    "bus.transfer": "bus_transfer",
    "nand.wait": "nand_wait",
    "nand.read": "nand_read",
    "nand.program": "nand_program",
    "nand.erase": "nand_erase",
    "firmware.wait": "firmware_cpu",
    # kamltrace replay driver (one root per replay run, not per op).
    "replay.run": "other",
    # Cluster serving tier (repro.cluster): request roots, queue wait,
    # routing/shedding instants, the 2PC phases, and host maintenance.
    "cluster.get": "cluster",
    "cluster.put": "cluster",
    "cluster.delete": "cluster",
    "cluster.scan": "cluster",
    "cluster.route": "cluster",
    "cluster.shed": "cluster",
    "cluster.queue": "cluster",
    "cluster.2pc": "cluster",
    "cluster.2pc.prepare": "cluster",
    "cluster.2pc.commit": "cluster",
    "cluster.2pc.decision": "cluster",
    "cluster.rebalance": "cluster",
    "cluster.recover": "cluster",
}

#: The registered span-name vocabulary (KL-OBS001 checks against this).
KNOWN_SPAN_NAMES = frozenset(SPAN_COMPONENTS)

#: Root span names that constitute host-visible requests; every other
#: root (GC, recovery, device flushes) is background/device activity.
REQUEST_ROOTS = frozenset({
    "store.get",
    "store.put",
    "store.txn.read",
    "store.txn.read_for_update",
    "store.txn.commit",
    "kaml.get",
    "kaml.put",
    "ftl.read",
    "ftl.write",
    "cluster.get",
    "cluster.put",
    "cluster.delete",
    "cluster.scan",
    "cluster.2pc",
})


def component_of(event: SpanEvent) -> str:
    """The component an event's self-time bills to.

    An explicit ``component=`` tag wins (that is what KL-OBS001 keeps
    honest); otherwise the registered per-name mapping; unknown names
    land in ``other`` rather than raising, so a profile of a stream from
    a newer build still renders.
    """
    tagged = event.tags.get("component")
    if tagged in COMPONENTS:
        return tagged
    return SPAN_COMPONENTS.get(event.name, "other")


# ---------------------------------------------------------------------------
# Interval arithmetic (disjoint, sorted [start, end) lists)
# ---------------------------------------------------------------------------

Interval = Tuple[float, float]


def _intersect(intervals: List[Interval], start: float, end: float) -> List[Interval]:
    """``intervals`` clipped to ``[start, end)``."""
    if end <= start:
        return []
    out: List[Interval] = []
    for lo, hi in intervals:
        lo = max(lo, start)
        hi = min(hi, end)
        if hi > lo:
            out.append((lo, hi))
    return out


def _subtract(intervals: List[Interval], claims: List[Interval]) -> List[Interval]:
    """``intervals`` minus ``claims`` (both disjoint and sorted)."""
    if not claims:
        return intervals
    out: List[Interval] = []
    for lo, hi in intervals:
        cursor = lo
        for c_lo, c_hi in claims:
            if c_hi <= cursor or c_lo >= hi:
                continue
            if c_lo > cursor:
                out.append((cursor, c_lo))
            cursor = max(cursor, c_hi)
            if cursor >= hi:
                break
        if cursor < hi:
            out.append((cursor, hi))
    return out


def _length(intervals: List[Interval]) -> float:
    return sum(hi - lo for lo, hi in intervals)


# ---------------------------------------------------------------------------
# Span trees
# ---------------------------------------------------------------------------

class SpanNode:
    """One span plus its children, ordered by ``(start_us, span_id)``."""

    __slots__ = ("event", "children")

    def __init__(self, event: SpanEvent):
        self.event = event
        self.children: List["SpanNode"] = []


def build_trace_trees(events: Iterable[SpanEvent]) -> Dict[int, List[SpanNode]]:
    """Group events by trace and rebuild parent/child trees.

    Returns ``{trace_id: [root nodes]}``.  A span whose parent fell out
    of the flight-recorder ring is treated as a root of its trace — a
    truncated profile is still a profile.
    """
    nodes: Dict[int, SpanNode] = {}
    order: List[SpanNode] = []
    for event in events:
        node = SpanNode(event)
        nodes[event.span_id] = node
        order.append(node)
    roots: Dict[int, List[SpanNode]] = {}
    for node in order:
        parent = nodes.get(node.event.parent_id) if node.event.parent_id else None
        if parent is not None and parent.event.trace_id == node.event.trace_id:
            parent.children.append(node)
        else:
            roots.setdefault(node.event.trace_id, []).append(node)
    for node in order:
        node.children.sort(key=lambda n: (n.event.start_us, n.event.span_id))
    for siblings in roots.values():
        siblings.sort(key=lambda n: (n.event.start_us, n.event.span_id))
    return roots


def _attribute(node: SpanNode, windows: List[Interval],
               acc: Dict[str, float]) -> None:
    """Attribute ``windows`` to components, children first.

    Children claim their share of the window in deterministic order;
    whatever they leave unclaimed is the node's self-time and bills to
    the node's own component.  Passing the *remaining* window down keeps
    concurrent siblings from double-counting the same microsecond.
    """
    remaining = windows
    for child in node.children:
        ev = child.event
        end = ev.end_us if ev.end_us is not None else ev.start_us
        claimed = _intersect(remaining, ev.start_us, end)
        if claimed:
            remaining = _subtract(remaining, claimed)
            _attribute(child, claimed, acc)
    self_us = _length(remaining)
    if self_us > 0.0:
        key = component_of(node.event)
        acc[key] = acc.get(key, 0.0) + self_us


def _request_anchor(root: SpanNode) -> SpanNode:
    """The node whose window is the host-visible latency.

    ``kaml.put`` detaches its root span and lets phases 2/3 finish in
    the background, so its host-visible window is the ``put.phase1``
    child; every other request's window is the root span itself.
    """
    if root.event.name == "kaml.put":
        for child in root.children:
            if child.event.name == "put.phase1":
                return child
    return root


def _node_interval(node: SpanNode) -> Interval:
    end = node.event.end_us if node.event.end_us is not None else node.event.start_us
    return (node.event.start_us, end)


def _trace_extent(root: SpanNode) -> Interval:
    """``[min start, max end)`` over the whole subtree (detached spans
    can outlive their parent, so the root interval alone is not enough)."""
    lo, hi = _node_interval(root)
    stack = [root]
    while stack:
        node = stack.pop()
        n_lo, n_hi = _node_interval(node)
        lo = min(lo, n_lo)
        hi = max(hi, n_hi)
        stack.extend(node.children)
    return (lo, hi)


# ---------------------------------------------------------------------------
# The breakdown report
# ---------------------------------------------------------------------------

def analyze(events: Iterable[SpanEvent], top_n: int = 5) -> Dict[str, Any]:
    """The full kamlprof report as a JSON-ready dict.

    ``requests``: per root-op, per namespace — count, latency stats, and
    per-component ``{us, fraction}`` whose fractions sum to 1.0 (up to
    float rounding) by construction.  ``background``: non-request traces
    (GC, recovery, device flushes) aggregated the same way over their
    full extent.  ``exemplars``: the ``top_n`` slowest requests with
    their individual breakdowns.
    """
    events = list(events)
    roots_by_trace = build_trace_trees(events)

    requests: Dict[str, Dict[str, Dict[str, Any]]] = {}
    latencies: Dict[Tuple[str, str], List[float]] = {}
    background: Dict[str, Dict[str, Any]] = {}
    exemplars: List[Dict[str, Any]] = []
    n_requests = 0

    for trace_id in sorted(roots_by_trace):
        for root in roots_by_trace[trace_id]:
            name = root.event.name
            if name in REQUEST_ROOTS:
                n_requests += 1
                anchor = _request_anchor(root)
                window = [_node_interval(anchor)]
                acc: Dict[str, float] = {}
                _attribute(anchor, window, acc)
                latency_us = _length(window)
                namespace = str(root.event.tags.get("namespace", "-"))
                bucket = requests.setdefault(name, {}).setdefault(
                    namespace, {"count": 0, "total_us": 0.0, "components": {}}
                )
                bucket["count"] += 1
                bucket["total_us"] += latency_us
                for comp, us in acc.items():
                    bucket["components"][comp] = (
                        bucket["components"].get(comp, 0.0) + us
                    )
                latencies.setdefault((name, namespace), []).append(latency_us)
                exemplars.append({
                    "op": name,
                    "namespace": namespace,
                    "trace_id": trace_id,
                    "start_us": anchor.event.start_us,
                    "latency_us": latency_us,
                    "components": {
                        comp: acc[comp] for comp in sorted(acc)
                    },
                })
            else:
                window = [_trace_extent(root)]
                acc = {}
                _attribute(root, window, acc)
                bucket = background.setdefault(
                    name, {"count": 0, "total_us": 0.0, "components": {}}
                )
                bucket["count"] += 1
                bucket["total_us"] += _length(window)
                for comp, us in acc.items():
                    bucket["components"][comp] = (
                        bucket["components"].get(comp, 0.0) + us
                    )

    # Finalise: fractions + latency percentiles, deterministically keyed.
    for name, by_namespace in requests.items():
        for namespace, bucket in by_namespace.items():
            series = sorted(latencies[(name, namespace)])
            total = bucket["total_us"]
            bucket["mean_us"] = total / bucket["count"] if bucket["count"] else 0.0
            bucket["p50_us"] = percentile(series, 0.50)
            bucket["p99_us"] = percentile(series, 0.99)
            bucket["max_us"] = series[-1] if series else 0.0
            bucket["components"] = {
                comp: {
                    "us": us,
                    "fraction": (us / total) if total > 0.0 else 0.0,
                }
                for comp, us in sorted(bucket["components"].items())
            }
    for name, bucket in background.items():
        total = bucket["total_us"]
        bucket["components"] = {
            comp: {
                "us": us,
                "fraction": (us / total) if total > 0.0 else 0.0,
            }
            for comp, us in sorted(bucket["components"].items())
        }

    exemplars.sort(key=lambda row: (-row["latency_us"], row["trace_id"]))
    return {
        "requests": requests,
        "background": background,
        "exemplars": exemplars[:top_n],
        "totals": {
            "requests": n_requests,
            "traces": len(roots_by_trace),
            "spans": len(events),
        },
    }


def breakdown_fractions(report: Dict[str, Any]) -> Dict[str, float]:
    """Flatten a report into ``{"op/ns=N/component": fraction}``.

    Every taxonomy component is emitted for every (op, namespace) pair —
    zeros included — so the baseline's key set is stable and a component
    *appearing* (e.g. bus_wait going 0 -> 0.2) gates exactly like one
    growing.
    """
    flat: Dict[str, float] = {}
    for op, by_namespace in sorted(report.get("requests", {}).items()):
        for namespace, bucket in sorted(by_namespace.items()):
            components = bucket.get("components", {})
            for comp in COMPONENTS:
                row = components.get(comp)
                flat[f"{op}/ns={namespace}/{comp}"] = (
                    float(row["fraction"]) if row else 0.0
                )
    return flat


# ---------------------------------------------------------------------------
# Collapsed-stack (flamegraph.pl / speedscope) export
# ---------------------------------------------------------------------------

def collapsed_stacks(events: Iterable[SpanEvent]) -> Dict[str, int]:
    """Self-time per unique root->span stack, in integer nanoseconds.

    Unlike the request breakdown this covers *all* traces over their
    full extent (background included): a flamegraph answers "where did
    the simulation's time go", the breakdown answers "what did the host
    wait on".  Concurrent work on different traces legitimately sums
    past wall time, exactly like a multi-thread collapse.
    """
    stacks: Dict[str, int] = {}
    roots_by_trace = build_trace_trees(events)

    def visit(node: SpanNode, prefix: str) -> None:
        stack = f"{prefix};{node.event.name}" if prefix else node.event.name
        own = [_node_interval(node)]
        for child in node.children:
            ev = child.event
            end = ev.end_us if ev.end_us is not None else ev.start_us
            own = _subtract(own, _intersect(own, ev.start_us, end))
        weight = int(round(_length(own) * 1000.0))
        if weight > 0:
            stacks[stack] = stacks.get(stack, 0) + weight
        for child in node.children:
            visit(child, stack)

    for trace_id in sorted(roots_by_trace):
        for root in roots_by_trace[trace_id]:
            visit(root, "")
    return stacks


def collapsed_lines(stacks: Dict[str, int]) -> List[str]:
    return [f"{stack} {weight}" for stack, weight in sorted(stacks.items())]


def write_collapsed(path: str, stacks: Dict[str, int]) -> None:
    with open(path, "w") as handle:
        for line in collapsed_lines(stacks):
            handle.write(line)
            handle.write("\n")


# ---------------------------------------------------------------------------
# Rendering helpers (plain rows for the harness, markdown for CI)
# ---------------------------------------------------------------------------

def breakdown_rows(report: Dict[str, Any],
                   min_fraction: float = 0.0) -> List[List[Any]]:
    """``[op, namespace, component, us, fraction]`` rows, sorted by
    (op, namespace, -fraction) — ready for ``format_table``."""
    rows: List[List[Any]] = []
    for op, by_namespace in sorted(report.get("requests", {}).items()):
        for namespace, bucket in sorted(by_namespace.items()):
            components = sorted(
                bucket.get("components", {}).items(),
                key=lambda item: (-item[1]["fraction"], item[0]),
            )
            for comp, row in components:
                if row["fraction"] < min_fraction:
                    continue
                rows.append([
                    op, namespace, comp,
                    round(row["us"], 3),
                    f"{row['fraction']:.1%}",
                ])
    return rows


def markdown_breakdown(report: Dict[str, Any],
                       title: str = "kamlprof latency breakdown") -> str:
    """The per-namespace breakdown as a GitHub-flavoured markdown table
    (written to ``$GITHUB_STEP_SUMMARY`` by the CI bench jobs)."""
    lines = [
        f"### {title}",
        "",
        "| op | ns | count | mean us | p50 us | p99 us | top components |",
        "|---|---|---:|---:|---:|---:|---|",
    ]
    for op, by_namespace in sorted(report.get("requests", {}).items()):
        for namespace, bucket in sorted(by_namespace.items()):
            components = sorted(
                bucket.get("components", {}).items(),
                key=lambda item: (-item[1]["fraction"], item[0]),
            )
            top = ", ".join(
                f"{comp} {row['fraction']:.0%}"
                for comp, row in components[:4]
                if row["fraction"] >= 0.005
            )
            lines.append(
                f"| {op} | {namespace} | {bucket['count']} "
                f"| {bucket['mean_us']:.2f} | {bucket['p50_us']:.2f} "
                f"| {bucket['p99_us']:.2f} | {top} |"
            )
    lines.append("")
    return "\n".join(lines)
