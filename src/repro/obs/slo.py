"""Per-namespace latency SLO tracking with flight-recorder breach dumps.

An :class:`SloTracker` sits next to a stack's registry and tracer.  Each
host-visible command latency is fed through :meth:`SloTracker.record`,
which observes it into an ``slo.<op>.us{namespace=...}`` histogram (the
shared interpolated-percentile code then yields p50/p99/p999) and checks
it against the configured :class:`SloPolicy` thresholds.  A breach bumps
the ``slo.breaches`` counter and captures a :class:`SloBreach` marker.

Breach dumps are *lazy*: at breach time only the trace id and window
bounds are pinned, because the causally-linked spans of the slow command
(its NVRAM pin, background phase 2, log appends) may not have completed
yet.  :meth:`SloTracker.breach_dump` materialises the dump later —
typically at end of run — by pulling the trace plus the surrounding
window out of the flight recorder.
"""

from __future__ import annotations

from typing import Any, Dict, List, NamedTuple, Optional, Union

#: Namespace label on a policy or breach: a device-local namespace id, a
#: cluster-level tenant/namespace name, or None for "every namespace".
NamespaceLabel = Optional[Union[int, str]]

from repro.obs.registry import MetricsRegistry
from repro.obs.trace import FlightRecorder


class SloPolicy(NamedTuple):
    """A latency objective: ``op`` commands must finish in ``threshold_us``.

    ``namespace=None`` applies the policy to every namespace.
    """

    op: str
    threshold_us: float
    namespace: NamespaceLabel = None

    def matches(self, op: str, namespace: NamespaceLabel) -> bool:
        if op != self.op:
            return False
        return self.namespace is None or self.namespace == namespace


class SloBreach(NamedTuple):
    """One recorded violation (dump is resolved lazily from the recorder)."""

    op: str
    namespace: NamespaceLabel
    latency_us: float
    threshold_us: float
    start_us: float
    end_us: float
    trace_id: int
    #: kamltrace op-journal id of the breaching command (0 when capture
    #: was off) — joins the breach back to the captured op for replay.
    op_id: int = 0


class SloTracker:
    """Latency-objective bookkeeping for one simulated stack."""

    #: Percentiles reported by :meth:`latency_summary`.
    FRACTIONS = (("p50", 0.50), ("p99", 0.99), ("p999", 0.999))

    def __init__(
        self,
        registry: MetricsRegistry,
        recorder: FlightRecorder,
        policies: Optional[List[SloPolicy]] = None,
        max_breaches: int = 64,
        window_slack_us: float = 2_000.0,
    ):
        self.registry = registry
        self.recorder = recorder
        self.policies: List[SloPolicy] = list(policies or [])
        self.max_breaches = max_breaches
        #: Extra sim-time kept on each side of a breach window so the
        #: dump shows what the device was doing around the slow command.
        self.window_slack_us = window_slack_us
        self.breaches: List[SloBreach] = []
        #: Breaches beyond ``max_breaches`` are counted but not retained.
        self.overflowed_breaches = 0
        # (op, label_ns) -> histogram, resolved once instead of per command.
        self._histograms: Dict[Any, Any] = {}

    # -- configuration ---------------------------------------------------

    def set_slo(
        self, op: str, threshold_us: float, namespace: NamespaceLabel = None
    ) -> SloPolicy:
        """Install (or replace) the policy for ``(op, namespace)``."""
        policy = SloPolicy(op, threshold_us, namespace)
        self.policies = [
            p for p in self.policies
            if not (p.op == op and p.namespace == namespace)
        ] + [policy]
        return policy

    # -- the hot path ----------------------------------------------------

    def record(
        self,
        op: str,
        namespace: NamespaceLabel,
        start_us: float,
        end_us: float,
        trace_id: int = 0,
        op_id: int = 0,
    ) -> Optional[SloBreach]:
        """Observe one command latency; returns the breach if any."""
        latency_us = end_us - start_us
        # Registry label values must sort homogeneously; namespaces are
        # stringified and a namespace-less op (e.g. a delete-only commit)
        # files under the aggregate "all" series.
        label_ns = "all" if namespace is None else str(namespace)
        cache_key = (op, label_ns)
        histogram = self._histograms.get(cache_key)
        if histogram is None:
            histogram = self.registry.histogram(f"slo.{op}.us", namespace=label_ns)
            self._histograms[cache_key] = histogram
        histogram.observe(latency_us)
        for policy in self.policies:
            if not policy.matches(op, namespace):
                continue
            if latency_us <= policy.threshold_us:
                continue
            self.registry.counter(
                "slo.breaches", op=op, namespace=label_ns
            ).inc()
            breach = SloBreach(
                op=op,
                namespace=namespace,
                latency_us=latency_us,
                threshold_us=policy.threshold_us,
                start_us=start_us,
                end_us=end_us,
                trace_id=trace_id,
                op_id=op_id,
            )
            if len(self.breaches) < self.max_breaches:
                self.breaches.append(breach)
            else:
                self.overflowed_breaches += 1
            return breach
        return None

    # -- reporting -------------------------------------------------------

    def latency_summary(self) -> Dict[str, Dict[str, float]]:
        """``{"slo.put.us{namespace=1}": {count, mean, p50, p99, p999}}``."""
        summary: Dict[str, Dict[str, float]] = {}
        for instrument in self.registry.instruments(prefix="slo."):
            if instrument.kind != "histogram" or not instrument.name.endswith(".us"):
                continue
            percentiles = {
                label: instrument.percentile(fraction) for label, fraction in self.FRACTIONS
            }
            row = {"count": float(instrument.count), "mean": instrument.mean, **percentiles}
            summary[instrument.key_string()] = row
        return summary

    def breach_dump(self, breach: SloBreach) -> Dict[str, Any]:
        """Materialise one breach: its trace plus the surrounding window.

        The returned events are whatever the flight recorder still
        retains; a breach resolved long after the fact may have lost its
        window to ring eviction (``capacity`` bounds memory, not time).
        """
        window = self.recorder.window(
            breach.start_us - self.window_slack_us,
            breach.end_us + self.window_slack_us,
        )
        trace = self.recorder.trace(breach.trace_id) if breach.trace_id else []
        seen = {id(event) for event in window}
        combined = window + [e for e in trace if id(e) not in seen]
        combined.sort(key=lambda e: (e.start_us, e.span_id))
        return {
            "breach": breach._asdict(),
            "events": [event.export() for event in combined],
        }

    def dump_breaches(self) -> List[Dict[str, Any]]:
        return [self.breach_dump(breach) for breach in self.breaches]
