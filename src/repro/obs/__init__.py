"""Unified observability: metrics, sim-time spans, and exporters.

One :class:`MetricsRegistry` per simulated stack is the single source of
truth for counters (ops, bytes, erases), gauges (queue depths, NVRAM
usage), and histograms (latency phases, GC victim quality).  Spans are
driven by simulated time, never the wall clock.  See the
"Observability" section of docs/internals.md for naming and label
conventions.
"""

from repro.obs.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    labels_key,
    percentile,
)
from repro.obs.registry import MetricsRegistry, SpanRecord
from repro.obs.export import (
    derived_metrics,
    summary_row,
    to_builtin,
    to_json,
    to_text,
    write_json,
)
from repro.obs.trace import (
    NULL_CONTEXT,
    FlightRecorder,
    NullContext,
    NullTracer,
    SpanEvent,
    TraceContext,
    Tracer,
    chrome_trace,
    write_chrome_trace,
)
from repro.obs.slo import SloBreach, SloPolicy, SloTracker
from repro.obs.oplog import (
    NULL_OPLOG,
    OpJournal,
    key_fingerprint,
    load_journal,
    mix_summary,
    write_journal,
)
from repro.obs.diff import diff_reports, markdown_diff
from repro.obs.profile import (
    COMPONENTS,
    KNOWN_SPAN_NAMES,
    SPAN_COMPONENTS,
    analyze,
    breakdown_fractions,
    collapsed_stacks,
    component_of,
    write_collapsed,
)
from repro.obs.timeseries import TimeSeriesCollector, install_device_probes

__all__ = [
    "COMPONENTS",
    "Counter",
    "DEFAULT_BUCKETS",
    "KNOWN_SPAN_NAMES",
    "NULL_CONTEXT",
    "NULL_OPLOG",
    "FlightRecorder",
    "OpJournal",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullContext",
    "NullTracer",
    "SloBreach",
    "SloPolicy",
    "SloTracker",
    "SPAN_COMPONENTS",
    "SpanEvent",
    "SpanRecord",
    "TimeSeriesCollector",
    "TraceContext",
    "Tracer",
    "analyze",
    "breakdown_fractions",
    "chrome_trace",
    "collapsed_stacks",
    "component_of",
    "derived_metrics",
    "diff_reports",
    "install_device_probes",
    "key_fingerprint",
    "labels_key",
    "load_journal",
    "markdown_diff",
    "mix_summary",
    "percentile",
    "summary_row",
    "to_builtin",
    "to_json",
    "to_text",
    "write_chrome_trace",
    "write_collapsed",
    "write_journal",
    "write_json",
]
