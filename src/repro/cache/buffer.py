"""The host key-value cache (Section III-D "Caching").

Unlike a page cache, entries are variable-sized key-value pairs keyed by
(namespace id, key).  Misses issue ``Get`` to the SSD; transactional
commits write through with ``Put``; non-transactional writes may stay
dirty and are flushed by eviction.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Tuple

from repro.config import HostCosts
from repro.kaml import KamlSsd, PutItem
from repro.obs import MetricsRegistry, TraceContext
from repro.sim import Environment


class CacheStats:
    """Compatible accessor over the ``cache.*`` registry counters."""

    def __init__(self, metrics: MetricsRegistry):
        self._metrics = metrics

    @property
    def hits(self) -> int:
        return int(self._metrics.total("cache.hits"))

    @property
    def misses(self) -> int:
        return int(self._metrics.total("cache.misses"))

    @property
    def evictions(self) -> int:
        return int(self._metrics.total("cache.evictions"))

    @property
    def writebacks(self) -> int:
        return int(self._metrics.total("cache.writebacks"))

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class _Entry:
    __slots__ = ("value", "size", "dirty")

    def __init__(self, value: Any, size: int, dirty: bool):
        self.value = value
        self.size = size
        self.dirty = dirty


class BufferManager:
    """LRU cache of key-value pairs with byte-granular capacity."""

    def __init__(
        self,
        env: Environment,
        ssd: KamlSsd,
        capacity_bytes: int,
        costs: HostCosts,
    ):
        if capacity_bytes <= 0:
            raise ValueError("cache capacity must be positive")
        self.env = env
        self.ssd = ssd
        self.capacity_bytes = capacity_bytes
        self.costs = costs
        self._entries: "OrderedDict[Tuple[int, int], _Entry]" = OrderedDict()
        self._used = 0
        self.metrics = ssd.metrics
        self.stats = CacheStats(self.metrics)
        # Hot-path instruments, resolved once instead of per access.
        self._used_bytes_gauge = self.metrics.gauge("cache.used_bytes")
        self._writebacks_counter = self.metrics.counter("cache.writebacks")
        self._evictions_counter = self.metrics.counter("cache.evictions")
        self._read_counters: dict = {}

    @property
    def used_bytes(self) -> int:
        return self._used

    def __contains__(self, cache_key: Tuple[int, int]) -> bool:
        return cache_key in self._entries

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def read(
        self, namespace_id: int, key: int, ctx: "TraceContext" = None
    ) -> Any:
        """Return ``(value, size)`` or None; fills from the SSD on miss."""
        cache_span = ctx.begin(
            "cache.read", namespace=namespace_id, key=key
        ) if ctx is not None else None
        yield self.env.timeout(self.costs.cache_probe_us)
        cache_key = (namespace_id, key)
        counters = self._read_counters.get(namespace_id)
        if counters is None:
            counters = (
                self.metrics.counter("cache.reads", namespace=namespace_id),
                self.metrics.counter("cache.hits", namespace=namespace_id),
                self.metrics.counter("cache.misses", namespace=namespace_id),
            )
            self._read_counters[namespace_id] = counters
        counters[0].inc()
        try:
            entry = self._entries.get(cache_key)
            if entry is not None:
                counters[1].inc()
                if cache_span is not None:
                    cache_span.tags["hit"] = True
                self._entries.move_to_end(cache_key)
                return entry.value, entry.size
            counters[2].inc()
            if cache_span is not None:
                cache_span.tags["hit"] = False
            result = yield from self.ssd.get_record(namespace_id, key, ctx=ctx)
            if result is None:
                return None
            value, size = result
            yield from self._insert(cache_key, value, size, dirty=False)
            return value, size
        finally:
            if ctx is not None:
                ctx.finish(cache_span)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def install_clean(self, namespace_id: int, key: int, value: Any, size: int) -> Any:
        """Place a just-persisted value in the cache (commit write-through)."""
        yield from self._insert((namespace_id, key), value, size, dirty=False)

    def install_dirty(self, namespace_id: int, key: int, value: Any, size: int) -> Any:
        """Write-back path: the value is newer than the SSD's copy."""
        yield from self._insert((namespace_id, key), value, size, dirty=True)

    def discard(self, namespace_id: int, key: int) -> None:
        entry = self._entries.pop((namespace_id, key), None)
        if entry is not None:
            self._used -= entry.size

    def flush(self) -> Any:
        """Write every dirty entry back to the SSD (one batched Put)."""
        dirty = [
            (cache_key, entry)
            for cache_key, entry in self._entries.items()
            if entry.dirty
        ]
        if not dirty:
            return
        items = [
            PutItem(cache_key[0], cache_key[1], entry.value, entry.size)
            for cache_key, entry in dirty
        ]
        yield from self.ssd.put(items)
        for _cache_key, entry in dirty:
            entry.dirty = False
        self._writebacks_counter.inc(len(dirty))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _insert(self, cache_key: Tuple[int, int], value: Any, size: int, dirty: bool) -> Any:
        if size > self.capacity_bytes:
            raise ValueError(
                f"value of {size} B exceeds cache capacity {self.capacity_bytes} B"
            )
        existing = self._entries.get(cache_key)
        if existing is not None:
            self._used -= existing.size
            existing.value = value
            existing.size = size
            existing.dirty = existing.dirty or dirty
            self._used += size
            self._entries.move_to_end(cache_key)
        else:
            self._entries[cache_key] = _Entry(value, size, dirty)
            self._used += size
        while self._used > self.capacity_bytes:
            yield from self._evict_one()
        self._used_bytes_gauge.set(self._used)
        yield self.env.timeout(size / self.costs.copy_bytes_per_us)

    def _evict_one(self) -> Any:
        victim_key, victim = next(iter(self._entries.items()))
        if victim.dirty:
            yield from self.ssd.put(
                [PutItem(victim_key[0], victim_key[1], victim.value, victim.size)]
            )
            self._writebacks_counter.inc()
        self._entries.pop(victim_key, None)
        self._used -= victim.size
        self._evictions_counter.inc()
        self._used_bytes_gauge.set(self._used)
