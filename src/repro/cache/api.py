"""``libkaml`` + caching layer: the Table II transactional API.

``KamlStore`` is what applications link against: it combines the buffer
manager (host DRAM cache), the SS2PL lock manager (isolation), and the
KAML SSD (atomicity + durability).  It serves as a database storage
engine in the OLTP experiments and as a NoSQL key-value store in the
YCSB experiments (Section V).

Typical transactional use::

    txn = store.transaction_begin()
    value = yield from store.transaction_read(txn, nsid, key)
    yield from store.transaction_update(txn, nsid, key, new_value, size)
    yield from store.transaction_commit(txn)
    store.transaction_free(txn)

Deadlock victims raise :class:`~repro.cache.locks.DeadlockError` from
read/update/insert; callers abort and retry.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.cache.buffer import BufferManager
from repro.cache.locks import DeadlockError, LockManager, LockMode
from repro.cache.transaction import DELETED, Transaction, TxnState
from repro.config import HostCosts
from repro.kaml import KamlSsd, NamespaceAttributes, PutItem
from repro.obs import MetricsRegistry
from repro.sim import Environment


class StoreStats:
    """Compatible accessor over the ``store.txn.*`` registry counters."""

    def __init__(self, metrics: MetricsRegistry):
        self._metrics = metrics

    @property
    def begun(self) -> int:
        return int(self._metrics.total("store.txn.begun"))

    @property
    def committed(self) -> int:
        return int(self._metrics.total("store.txn.committed"))

    @property
    def aborted(self) -> int:
        return int(self._metrics.total("store.txn.aborted"))


class KamlStore:
    """The KAML caching layer's application-facing API."""

    def __init__(
        self,
        env: Environment,
        ssd: KamlSsd,
        cache_bytes: int,
        records_per_lock: int = 1,
        costs: Optional[HostCosts] = None,
    ):
        self.env = env
        self.ssd = ssd
        self.costs = costs or ssd.config.host
        self.metrics = ssd.metrics
        self.tracer = ssd.tracer
        self.slo = ssd.slo
        self.buffer = BufferManager(env, ssd, cache_bytes, self.costs)
        self.locks = LockManager(
            env, self.costs, records_per_lock=records_per_lock, metrics=self.metrics
        )
        self.stats = StoreStats(self.metrics)
        self._next_txn_id = 1

    # ------------------------------------------------------------------
    # Namespace management (pass-through to the SSD)
    # ------------------------------------------------------------------

    def create_namespace(self, attributes: Optional[NamespaceAttributes] = None) -> Any:
        namespace_id = yield from self.ssd.create_namespace(attributes)
        return namespace_id

    def delete_namespace(self, namespace_id: int) -> Any:
        yield from self.ssd.delete_namespace(namespace_id)

    # ------------------------------------------------------------------
    # Table II: transactional API
    # ------------------------------------------------------------------

    def transaction_begin(self) -> Transaction:
        """``TransactionBegin()``: allocate an XCB and activate it."""
        txn = Transaction(self._next_txn_id)
        self._next_txn_id += 1
        txn.begin()
        self.metrics.counter("store.txn.begun").inc()
        return txn

    def transaction_read(self, txn: Transaction, namespace_id: int, key: int) -> Any:
        """``TransactionRead()``: S-lock the record, serve it from the
        transaction's workspace, the cache, or the SSD."""
        txn.require_active()
        staged = txn.staged(namespace_id, key)
        if staged is DELETED:
            return None
        if staged is not None:
            return staged[0]
        started = self.env.now
        ctx = self.tracer.request(
            "store.txn.read", txn=txn.txn_id, namespace=namespace_id, key=key
        )
        result = None
        try:
            with ctx.span("lock.acquire", parent=ctx.root, mode="S"):
                yield from self.locks.acquire(
                    txn, self.locks.lock_name(namespace_id, key), LockMode.SHARED
                )
            txn.reads.add((namespace_id, key))
            result = yield from self.buffer.read(namespace_id, key, ctx=ctx)
        finally:
            ctx.close()
            oplog = self.ssd.oplog
            if oplog.enabled:
                # Transactional reads are the store-level workload too:
                # journal them as "get" rows so a captured OLTP/YCSB run
                # keeps its read mix (workspace-served reads never leave
                # the host and are not journaled).
                oplog.record(
                    "get", namespace_id, key,
                    result[1] if result is not None else 0,
                    started, self.env.now,
                    outcome="ok" if result is not None else "absent",
                    trace_id=ctx.trace_id, layer="store",
                )
        return result[0] if result is not None else None

    def transaction_read_for_update(
        self, txn: Transaction, namespace_id: int, key: int
    ) -> Any:
        """Read with an exclusive lock up front (SELECT ... FOR UPDATE).

        Avoids the S->X upgrade deadlocks that read-then-update patterns
        (TPC-B balance updates, YCSB-F read-modify-write) would otherwise
        generate under contention.
        """
        txn.require_active()
        staged = txn.staged(namespace_id, key)
        if staged is DELETED:
            return None
        if staged is not None:
            return staged[0]
        started = self.env.now
        ctx = self.tracer.request(
            "store.txn.read_for_update", txn=txn.txn_id, namespace=namespace_id, key=key
        )
        result = None
        try:
            with ctx.span("lock.acquire", parent=ctx.root, mode="X"):
                yield from self.locks.acquire(
                    txn, self.locks.lock_name(namespace_id, key), LockMode.EXCLUSIVE
                )
            txn.reads.add((namespace_id, key))
            result = yield from self.buffer.read(namespace_id, key, ctx=ctx)
        finally:
            ctx.close()
            oplog = self.ssd.oplog
            if oplog.enabled:
                oplog.record(
                    "get", namespace_id, key,
                    result[1] if result is not None else 0,
                    started, self.env.now,
                    outcome="ok" if result is not None else "absent",
                    trace_id=ctx.trace_id, layer="store",
                )
        return result[0] if result is not None else None

    def transaction_update(
        self, txn: Transaction, namespace_id: int, key: int, value: Any, size: int
    ) -> Any:
        """``TransactionUpdate()``: X-lock and stage a private copy; the
        change stays in host memory until commit."""
        txn.require_active()
        started = self.env.now
        yield from self.locks.acquire(
            txn, self.locks.lock_name(namespace_id, key), LockMode.EXCLUSIVE
        )
        yield self.env.timeout(size / self.costs.copy_bytes_per_us)
        txn.stage_write(namespace_id, key, value, size)
        oplog = self.ssd.oplog
        if oplog.enabled:
            # Journaled at stage time, even if the transaction later
            # aborts: the journal captures what the client asked for.
            # Durability is the commit's device-layer put batch.
            oplog.record(
                "put", namespace_id, key, size, started, self.env.now,
                layer="store",
            )

    def transaction_insert(
        self, txn: Transaction, namespace_id: int, key: int, value: Any, size: int
    ) -> Any:
        """``TransactionInsert()``: identical locking to update; semantic
        distinction kept for workload fidelity."""
        yield from self.transaction_update(txn, namespace_id, key, value, size)

    def transaction_delete(self, txn: Transaction, namespace_id: int, key: int) -> Any:
        """Extension: transactional delete (tombstone until commit)."""
        txn.require_active()
        started = self.env.now
        yield from self.locks.acquire(
            txn, self.locks.lock_name(namespace_id, key), LockMode.EXCLUSIVE
        )
        txn.stage_delete(namespace_id, key)
        oplog = self.ssd.oplog
        if oplog.enabled:
            oplog.record(
                "delete", namespace_id, key, 0, started, self.env.now,
                layer="store",
            )

    def transaction_commit(self, txn: Transaction) -> Any:
        """``TransactionCommit()``: publish private copies to the cache,
        flush them with one atomic ``Put``, release locks.

        The ``Put`` ack is the durability point (the SSD has the batch in
        NVRAM); multiple transactions commit in parallel when they touch
        disjoint records — the paper's key advantage over a centralized
        WAL (Section V-D-1)."""
        txn.require_active()
        items = []
        deletes = []
        for (namespace_id, key), staged in txn.writes.items():
            if staged is DELETED:
                deletes.append((namespace_id, key))
            else:
                value, size = staged
                items.append(PutItem(namespace_id, key, value, size))
        started = self.env.now
        ctx = self.tracer.request(
            "store.txn.commit",
            txn=txn.txn_id,
            records=len(items),
            deletes=len(deletes),
        )
        try:
            if items:
                yield from self.ssd.put(items, ctx=ctx)
                for item in items:
                    yield from self.buffer.install_clean(
                        item.namespace_id, item.key, item.value, item.size
                    )
            for namespace_id, key in deletes:
                yield from self.ssd.delete(namespace_id, key)
                self.buffer.discard(namespace_id, key)
            yield self.env.timeout(self.costs.txn_overhead_us)
            txn.mark_committed()
            self.locks.release_all(txn)
            self.metrics.counter("store.txn.committed").inc()
        finally:
            ctx.close()
            self.slo.record(
                "txn.commit",
                items[0].namespace_id if items else None,
                started,
                self.env.now,
                ctx.trace_id,
            )

    def transaction_abort(self, txn: Transaction) -> Any:
        """``TransactionAbort()``: discard private copies, release locks."""
        txn.require_active()
        txn.writes.clear()
        yield self.env.timeout(self.costs.txn_overhead_us)
        txn.mark_aborted()
        self.locks.cancel_wait(txn)
        self.locks.release_all(txn)
        self.metrics.counter("store.txn.aborted").inc()

    def transaction_free(self, txn: Transaction) -> None:
        """``TransactionFree()``: release the XCB (back to IDLE)."""
        txn.free()

    # ------------------------------------------------------------------
    # Non-transactional NoSQL convenience API
    # ------------------------------------------------------------------

    def get(self, namespace_id: int, key: int) -> Any:
        """Cache-accelerated read outside any transaction."""
        started = self.env.now
        ctx = self.tracer.request("store.get", namespace=namespace_id, key=key)
        result = None
        try:
            result = yield from self.buffer.read(namespace_id, key, ctx=ctx)
        finally:
            ctx.close()
            op_id = 0
            oplog = self.ssd.oplog
            if oplog.enabled:
                # layer="store" keeps host-level rows (cache hits
                # included) apart from the device rows the SSD journals
                # itself on a cache miss.
                op_id = oplog.record(
                    "get", namespace_id, key,
                    result[1] if result is not None else 0,
                    started, self.env.now,
                    outcome="ok" if result is not None else "absent",
                    trace_id=ctx.trace_id, layer="store",
                )
            self.slo.record(
                "store.get", namespace_id, started, self.env.now, ctx.trace_id,
                op_id=op_id,
            )
        return result[0] if result is not None else None

    def put(self, namespace_id: int, key: int, value: Any, size: int) -> Any:
        """Durable single-record write (write-through)."""
        started = self.env.now
        ctx = self.tracer.request("store.put", namespace=namespace_id, key=key)
        try:
            yield from self.ssd.put([PutItem(namespace_id, key, value, size)], ctx=ctx)
            yield from self.buffer.install_clean(namespace_id, key, value, size)
        finally:
            ctx.close()
            op_id = 0
            oplog = self.ssd.oplog
            if oplog.enabled:
                op_id = oplog.record(
                    "put", namespace_id, key, size, started, self.env.now,
                    trace_id=ctx.trace_id, layer="store",
                )
            self.slo.record(
                "store.put", namespace_id, started, self.env.now, ctx.trace_id,
                op_id=op_id,
            )

    def put_cached(self, namespace_id: int, key: int, value: Any, size: int) -> Any:
        """Write-back write: dirty in cache, flushed on eviction/flush."""
        yield from self.buffer.install_dirty(namespace_id, key, value, size)

    def snapshot(self, namespace_id: int) -> Any:
        """Freeze a namespace (commits are write-through, so the cache
        holds nothing newer than the SSD; the SSD drains its own staging
        pipeline before cloning).  Returns the snapshot id."""
        snapshot_id = yield from self.ssd.snapshot_namespace(namespace_id)
        return snapshot_id

    def get_from_snapshot(self, snapshot_id: int, key: int) -> Any:
        """Point-in-time read (bypasses the cache: snapshots are frozen)."""
        value = yield from self.ssd.get_from_snapshot(snapshot_id, key)
        return value

    def drop_snapshot(self, snapshot_id: int) -> Any:
        yield from self.ssd.delete_snapshot(snapshot_id)

    def scan(self, namespace_id: int, low: int, high: int) -> Any:
        """Range scan over a sorted namespace (bypasses the KV cache; the
        SSD merges its own staged writes, and commit is write-through, so
        results reflect every committed value)."""
        results = yield from self.ssd.scan(namespace_id, low, high)
        return results

    def flush(self) -> Any:
        yield from self.buffer.flush()

    # ------------------------------------------------------------------
    # Helpers for retry loops
    # ------------------------------------------------------------------

    def run_transaction(self, body, max_retries: int = 64) -> Any:
        """Execute ``body(txn)`` (a generator function) with begin/commit
        and deadlock-retry.  Returns the body's return value."""
        attempt = 0
        while True:
            txn = self.transaction_begin()
            try:
                result = yield from body(txn)
                yield from self.transaction_commit(txn)
                self.transaction_free(txn)
                return result
            except DeadlockError:
                attempt += 1
                if txn.state is TxnState.ACTIVE:
                    yield from self.transaction_abort(txn)
                self.transaction_free(txn)
                if attempt > max_retries:
                    raise
                # Brief randomless backoff proportional to attempt count.
                yield self.env.timeout(self.costs.txn_overhead_us * attempt)
