"""Transaction control blocks and the Figure 2 state machine."""

from __future__ import annotations

import enum
from typing import Any, Dict, Hashable, Optional, Set, Tuple


class TxnState(enum.Enum):
    IDLE = "idle"
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class TransactionError(Exception):
    """An API call that Figure 2's state machine does not allow."""


#: Sentinel marking a key deleted inside a transaction's private workspace.
DELETED = object()


class Transaction:
    """A transaction control block (XCB, Section III-D).

    Holds the lock set and the private copies of every record the
    transaction wrote; commit publishes the copies, abort discards them.
    State transitions follow Figure 2:

    ``IDLE -> ACTIVE`` (begin), ``ACTIVE -> COMMITTED`` (commit),
    ``ACTIVE -> ABORTED`` (abort), ``COMMITTED/ABORTED -> IDLE`` (free).
    """

    def __init__(self, txn_id: int):
        self.txn_id = txn_id
        self.state = TxnState.IDLE
        self.held_locks: Set[Hashable] = set()
        #: (namespace_id, key) -> (value, size) private copies, or DELETED.
        self.writes: Dict[Tuple[int, int], Any] = {}
        self.reads: Set[Tuple[int, int]] = set()
        self.restarts = 0

    # -- state machine (Figure 2) -----------------------------------------

    def begin(self) -> None:
        if self.state is not TxnState.IDLE:
            raise TransactionError(f"begin from {self.state.value}")
        self.state = TxnState.ACTIVE

    def mark_committed(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionError(f"commit from {self.state.value}")
        self.state = TxnState.COMMITTED

    def mark_aborted(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionError(f"abort from {self.state.value}")
        self.state = TxnState.ABORTED

    def free(self) -> None:
        if self.state not in (TxnState.COMMITTED, TxnState.ABORTED):
            raise TransactionError(f"free from {self.state.value}")
        self.state = TxnState.IDLE
        self.writes.clear()
        self.reads.clear()

    # -- workspace ----------------------------------------------------------

    def require_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionError(f"operation outside ACTIVE: {self.state.value}")

    def stage_write(self, namespace_id: int, key: int, value: Any, size: int) -> None:
        self.writes[(namespace_id, key)] = (value, size)

    def stage_delete(self, namespace_id: int, key: int) -> None:
        self.writes[(namespace_id, key)] = DELETED

    def staged(self, namespace_id: int, key: int) -> Optional[Any]:
        """The private copy for a key, or None if this txn never wrote it."""
        return self.writes.get((namespace_id, key))
