"""The KAML caching layer (``libkaml`` + host cache, Section III-D).

Variable-size key-value caching in host DRAM, plus a transaction manager
that adds isolation (strong strict two-phase locking) on top of the SSD's
native atomicity and durability.  The lock manager supports record-level
locks, coarser lock striping (N records per lock), and page-granularity
emulation — the knobs behind Figure 9's locking-granularity results.
"""

from repro.cache.locks import (
    LockManager,
    LockMode,
    DeadlockError,
)
from repro.cache.transaction import Transaction, TransactionError, TxnState
from repro.cache.buffer import BufferManager, CacheStats
from repro.cache.api import KamlStore

__all__ = [
    "LockManager",
    "LockMode",
    "DeadlockError",
    "Transaction",
    "TransactionError",
    "TxnState",
    "BufferManager",
    "CacheStats",
    "KamlStore",
]
