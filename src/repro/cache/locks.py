"""SS2PL lock manager with configurable granularity (Sections III-C, III-D).

Transactions acquire shared/exclusive locks before touching key-value
pairs and hold them until commit or abort (strong strict two-phase
locking, [14] in the paper).  The unit of locking is configurable:

* ``records_per_lock=1`` — the record-level locking KAML is built for;
* ``records_per_lock=N`` — lock striping: key ``k`` shares a lock with
  every key in its stripe ``k // N``, emulating coarse-grained locks
  (Figure 9 runs N in {1, 16});
* page-granularity baselines map a key to its page id first and pass
  that here.

Deadlocks are detected eagerly: before a transaction blocks, the
wait-for graph is probed for a cycle and the *youngest* transaction in
the cycle is aborted with :class:`DeadlockError`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Set, Tuple

from repro.config import HostCosts
from repro.obs import MetricsRegistry
from repro.sim import Environment, Event


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"


class DeadlockError(Exception):
    """This transaction was chosen as a deadlock victim; abort and retry."""


def _compatible(held: LockMode, wanted: LockMode) -> bool:
    return held is LockMode.SHARED and wanted is LockMode.SHARED


@dataclass
class _Waiter:
    txn_id: int
    mode: LockMode
    event: Event
    cancelled: bool = False


@dataclass
class _Lock:
    holders: Dict[int, LockMode] = field(default_factory=dict)
    queue: List[_Waiter] = field(default_factory=list)


class LockManager:
    """Keyed S/X locks with FIFO queuing and deadlock victimisation."""

    def __init__(
        self,
        env: Environment,
        costs: HostCosts,
        records_per_lock: int = 1,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if records_per_lock < 1:
            raise ValueError("records_per_lock must be >= 1")
        self.env = env
        self.costs = costs
        self.records_per_lock = records_per_lock
        self._locks: Dict[Hashable, _Lock] = {}
        #: txn_id -> lock name it is currently blocked on (for cycle search)
        self._waiting_on: Dict[int, Hashable] = {}
        self.metrics = (
            metrics
            if metrics is not None
            else MetricsRegistry(clock=lambda: env.now)
        )

    @property
    def deadlocks(self) -> int:
        return int(self.metrics.total("cache.lock.deadlocks"))

    @property
    def conflicts(self) -> int:
        return int(self.metrics.total("cache.lock.conflicts"))

    # ------------------------------------------------------------------
    # Granularity
    # ------------------------------------------------------------------

    def lock_name(self, namespace_id: int, key: int) -> Tuple[int, int]:
        """Map a record to its lock: the stripe of ``records_per_lock`` keys."""
        return (namespace_id, key // self.records_per_lock)

    # ------------------------------------------------------------------
    # Acquire / release
    # ------------------------------------------------------------------

    def acquire(self, txn: Any, name: Hashable, mode: LockMode) -> Any:
        """Timed acquire for transaction ``txn`` (needs ``.txn_id`` and
        ``.held_locks``).  Raises :class:`DeadlockError` on victimisation."""
        yield self.env.timeout(self.costs.lock_us)
        lock = self._locks.get(name)
        if lock is None:
            lock = _Lock()
            self._locks[name] = lock
        txn_id = txn.txn_id
        held = lock.holders.get(txn_id)
        if held is not None:
            if held is mode or held is LockMode.EXCLUSIVE:
                return  # already strong enough
            # Upgrade S -> X: immediate if sole holder, else wait.
            if len(lock.holders) == 1:
                lock.holders[txn_id] = LockMode.EXCLUSIVE
                return
        elif self._grantable(lock, mode):
            lock.holders[txn_id] = mode
            txn.held_locks.add(name)
            return
        # Must wait: check for a deadlock this wait would create.
        self.metrics.counter("cache.lock.conflicts").inc()
        blockers = self._blockers(lock, txn_id, mode)
        victim = self._find_deadlock_victim(txn_id, blockers)
        if victim == txn_id:
            self.metrics.counter("cache.lock.deadlocks").inc()
            raise DeadlockError(f"txn {txn_id} victimised on lock {name!r}")
        if victim is not None:
            self.metrics.counter("cache.lock.deadlocks").inc()
            self._kill_waiter(victim)
        waiter = _Waiter(txn_id, mode, self.env.event())
        # Upgraders go to the front so they cannot deadlock behind
        # later arrivals wanting the same lock.
        if held is not None:
            lock.queue.insert(0, waiter)
        else:
            lock.queue.append(waiter)
        self._waiting_on[txn_id] = name
        wait_started = self.env.now
        try:
            yield waiter.event
        finally:
            self._waiting_on.pop(txn_id, None)
            self.metrics.observe("cache.lock.wait_us", self.env.now - wait_started)
        txn.held_locks.add(name)

    def release_all(self, txn: Any) -> None:
        """Drop every lock the transaction holds (commit/abort, SS2PL).

        Release order follows a sorted key: ``held_locks`` is a set, and
        grant order downstream must not depend on hash order.
        """
        for name in sorted(txn.held_locks, key=repr):
            lock = self._locks.get(name)
            if lock is None:
                continue
            lock.holders.pop(txn.txn_id, None)
            self._grant_waiters(name, lock)
        txn.held_locks.clear()

    def release_one(self, txn: Any, name: Hashable) -> None:
        """Release a single lock early (latch semantics, not 2PL)."""
        lock = self._locks.get(name)
        if lock is not None:
            lock.holders.pop(txn.txn_id, None)
            self._grant_waiters(name, lock)
        txn.held_locks.discard(name)

    def cancel_wait(self, txn: Any) -> None:
        """Withdraw a pending wait after the waiter was victimised."""
        name = self._waiting_on.pop(txn.txn_id, None)
        if name is None:
            return
        lock = self._locks.get(name)
        if lock:
            for waiter in lock.queue:
                if waiter.txn_id == txn.txn_id:
                    waiter.cancelled = True

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _grantable(self, lock: _Lock, mode: LockMode) -> bool:
        if any(not w.cancelled for w in lock.queue):
            return False  # FIFO fairness: no barging past waiters
        return all(_compatible(held, mode) for held in lock.holders.values())

    def _grant_waiters(self, name: Hashable, lock: _Lock) -> None:
        while lock.queue:
            waiter = lock.queue[0]
            if waiter.cancelled:
                lock.queue.pop(0)
                continue
            held = lock.holders.get(waiter.txn_id)
            if held is not None:
                # Upgrade: grantable only as the sole holder.
                if len(lock.holders) == 1:
                    lock.queue.pop(0)
                    lock.holders[waiter.txn_id] = LockMode.EXCLUSIVE
                    self._waiting_on.pop(waiter.txn_id, None)
                    waiter.event.succeed()
                    continue
                break
            if all(_compatible(h, waiter.mode) for h in lock.holders.values()):
                lock.queue.pop(0)
                lock.holders[waiter.txn_id] = waiter.mode
                self._waiting_on.pop(waiter.txn_id, None)
                waiter.event.succeed()
                if waiter.mode is LockMode.EXCLUSIVE:
                    break
                continue
            break
        if not lock.holders and not lock.queue:
            self._locks.pop(name, None)

    def _blockers(self, lock: _Lock, txn_id: int, mode: LockMode) -> Set[int]:
        """Transactions this waiter would wait behind."""
        blockers = {
            holder
            for holder, held in lock.holders.items()
            if holder != txn_id and not _compatible(held, mode)
        }
        for waiter in lock.queue:
            if not waiter.cancelled and waiter.txn_id != txn_id:
                blockers.add(waiter.txn_id)
        return blockers

    def _find_deadlock_victim(
        self, txn_id: int, blockers: Set[int]
    ) -> Optional[int]:
        """Would waiting behind ``blockers`` close a cycle?

        Follows wait-for edges from each blocker; if the chain reaches
        ``txn_id``, returns the youngest (largest id) transaction in the
        cycle, else None.
        """
        for blocker in sorted(blockers):
            cycle = self._path_to(blocker, txn_id, frozenset())
            if cycle is not None:
                return max(cycle + [txn_id, blocker])
        return None

    def _path_to(self, start: int, target: int, seen) -> Optional[List[int]]:
        if start == target:
            return []
        if start in seen:
            return None
        name = self._waiting_on.get(start)
        if name is None:
            return None
        lock = self._locks.get(name)
        if lock is None:
            return None
        mode = next(
            (w.mode for w in lock.queue if w.txn_id == start and not w.cancelled),
            LockMode.EXCLUSIVE,
        )
        for blocker in sorted(self._blockers(lock, start, mode)):
            path = self._path_to(blocker, target, seen | {start})
            if path is not None:
                return [start] + path
        return None

    def _kill_waiter(self, txn_id: int) -> None:
        """Victimise a *blocked* transaction: fail its pending event."""
        name = self._waiting_on.pop(txn_id, None)
        if name is None:
            return
        lock = self._locks.get(name)
        if lock is None:
            return
        for waiter in lock.queue:
            if waiter.txn_id == txn_id and not waiter.cancelled:
                waiter.cancelled = True
                waiter.event.fail(DeadlockError(f"txn {txn_id} victimised while waiting"))
                break
        self._grant_waiters(name, lock)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def holders_of(self, name: Hashable) -> Dict[int, LockMode]:
        lock = self._locks.get(name)
        return dict(lock.holders) if lock else {}

    def waiting_count(self) -> int:
        return len(self._waiting_on)
