"""NVMe-style block interface over the conventional page FTL.

This is the reference firmware's host-visible surface (Section V-A): block
``read``/``write`` commands addressed by logical page, carried over the
PCIe link, executed by :class:`~repro.ftl.page_ftl.PageFtl`.  Commands of
less than a logical page are legal; sub-page writes take the FTL's
read-modify-write path.
"""

from __future__ import annotations

from typing import Any

from repro.config import ReproConfig
from repro.flash import FlashArray
from repro.ftl.page_ftl import LOGICAL_PAGE, PageFtl
from repro.sim import Environment
from repro.ssd import FirmwarePool, HostInterconnect, NvramBuffer


class NvmeBlockDevice:
    """Host-facing block device: ``read``/``write`` by logical page number."""

    def __init__(self, env: Environment, config: ReproConfig):
        self.env = env
        self.config = config
        self.array = FlashArray(env, config.geometry, config.flash)
        self.firmware = FirmwarePool(env, config.resources.firmware_contexts)
        self.nvram = NvramBuffer(env, config.resources.nvram_bytes)
        self.link = HostInterconnect(env, config.interconnect)
        self.ftl = PageFtl(env, config, self.array, self.firmware, self.nvram)

    @property
    def logical_pages(self) -> int:
        return self.ftl.logical_pages

    @property
    def logical_page_size(self) -> int:
        return LOGICAL_PAGE

    def precondition(self) -> None:
        """Fill every LBA with synthetic data (paper's setup, Section V-A)."""
        self.ftl.precondition()

    # -- timed host commands (drive with ``yield from``) -------------------

    def read(self, lpn: int, nbytes: int = LOGICAL_PAGE) -> Any:
        """NVMe read: returns the logical page's current payload."""
        yield from self.link.command_overhead()
        data = yield from self.ftl.read(lpn, nbytes)
        yield from self.link.device_to_host(nbytes)
        return data

    def write(self, lpn: int, data: Any, nbytes: int = LOGICAL_PAGE) -> Any:
        """NVMe write: returns once the data is durable in the device."""
        yield from self.link.command_overhead()
        yield from self.link.host_to_device(nbytes)
        yield from self.ftl.write(lpn, data, nbytes)

    def drain(self) -> Any:
        """Push any buffered writes to flash (test/shutdown helper)."""
        yield from self.ftl.flush()
