"""The baseline block device: NVMe read/write over a conventional page FTL."""

from repro.blockdev.nvme import NvmeBlockDevice

__all__ = ["NvmeBlockDevice"]
