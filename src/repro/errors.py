"""Shared error types for invariant enforcement.

Guards that protect protocol invariants must survive ``python -O``, so
they are expressed as explicit ``raise InvariantError`` rather than
``assert`` statements (kamllint rule KL-INV001 enforces this across
``src/repro``).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for errors raised by the repro stack itself."""


class PowerLossError(ReproError):
    """The simulated SSD lost power mid-operation.

    Raised by :class:`repro.fault.PowerLossInjector` at an armed crash
    point, after volatile state has already been discarded via
    :meth:`repro.kaml.ssd.KamlSsd.power_loss`.  It propagates out of the
    raising sim process (and out of ``env.run`` when that process has no
    waiters); harness code catches it and drives recovery.
    """


class InvariantError(ReproError):
    """A protocol or accounting invariant was violated.

    Raised by the runtime sanitizers (:mod:`repro.sanitize`) and by
    guards that must not be stripped by ``python -O``.  Each message is
    prefixed with a sanitizer rule id (``SAN-*``) so CI logs and the
    static-analysis docs can cross-reference the check that fired.
    """

    def __init__(self, rule: str, message: str):
        self.rule = rule
        super().__init__(f"{rule}: {message}")
