"""Shared error types for invariant enforcement.

Guards that protect protocol invariants must survive ``python -O``, so
they are expressed as explicit ``raise InvariantError`` rather than
``assert`` statements (kamllint rule KL-INV001 enforces this across
``src/repro``).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for errors raised by the repro stack itself."""


class InvariantError(ReproError):
    """A protocol or accounting invariant was violated.

    Raised by the runtime sanitizers (:mod:`repro.sanitize`) and by
    guards that must not be stripped by ``python -O``.  Each message is
    prefixed with a sanitizer rule id (``SAN-*``) so CI logs and the
    static-analysis docs can cross-reference the check that fired.
    """

    def __init__(self, rule: str, message: str):
        self.rule = rule
        super().__init__(f"{rule}: {message}")
