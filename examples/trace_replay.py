#!/usr/bin/env python
"""Trace capture and replay against the simulated KAML SSD.

Production KV traces are proprietary, so this repo ships a synthetic
generator with controllable skew and a replayable one-op-per-line text
format.  This example synthesizes a skewed mixed workload, replays it,
and prints latency percentiles plus the device's wear report.

Run:  python examples/trace_replay.py
"""

from repro.analysis import summarize, wear_report
from repro.harness import build_kaml_ssd, format_kv
from repro.workloads import Trace, sequential_fill, synthesize
from repro.workloads.trace import replay
from repro.workloads.oltp import drive


def main() -> None:
    env, ssd = build_kaml_ssd()

    def create():
        nsid = yield from ssd.create_namespace()
        return nsid

    nsid = drive(env, create())

    # Precondition: fill 1,000 keys, then replay a zipfian 70/30 mix.
    replay(env, ssd, nsid, sequential_fill(1000, value_size=1024), threads=8)
    trace = synthesize(
        operations=800,
        key_space=1000,
        read_fraction=0.7,
        value_size=1024,
        distribution="zipfian",
        seed=21,
    )

    # The same trace can be saved and reloaded as plain text.
    text = trace.dumps()
    reloaded = Trace.loads(text)
    assert reloaded.ops == trace.ops

    result = replay(env, ssd, nsid, reloaded, threads=8)
    latency = summarize(result.latencies_us)
    print(format_kv("Trace replay (zipfian, 70% reads, 8 threads)", {
        "operations": result.ops,
        "trace working set": trace.working_set(),
        "throughput ops/s": result.ops_per_second,
        "mean latency us": latency.mean_us,
        "p95 latency us": latency.p95_us,
        "p99 latency us": latency.p99_us,
    }))

    wear = wear_report(ssd)
    print()
    print(format_kv("Device wear after the run", {
        "host MB written": wear.host_bytes_written / 1e6,
        "flash MB programmed": wear.flash_bytes_programmed / 1e6,
        "write amplification": wear.write_amplification,
        "mean erase count": wear.mean_erase_count,
        "life used %": wear.life_used * 100,
    }))


if __name__ == "__main__":
    main()
