#!/usr/bin/env python
"""The KAML caching layer as a NoSQL key-value store (Section V-E).

Runs a small YCSB workload-A mix (50 % reads / 50 % updates, zipfian
keys) through the caching layer, then prints cache behaviour and
throughput, and contrasts it with the same mix on the Shore-MT-style
baseline engine.

Run:  python examples/nosql_store.py
"""

from repro.harness import build_kaml_store, build_shore_engine, format_kv
from repro.workloads import KamlAdapter, ShoreAdapter, Ycsb

RECORDS = 600
THREADS = 8
OPS_PER_THREAD = 25


def run_kaml():
    env, ssd, store = build_kaml_store(cache_bytes=RECORDS * 1024 // 2)
    adapter = KamlAdapter(store)
    ycsb = Ycsb(env, adapter, records=RECORDS, workload="a", seed=5)
    ycsb.setup()
    result = ycsb.run(threads=THREADS, ops_per_thread=OPS_PER_THREAD)
    print(format_kv("KAML caching layer, YCSB-A", {
        "operations": result.transactions,
        "throughput ops/s": result.tps,
        "mean latency us": result.mean_latency_us,
        "cache hit ratio": store.buffer.stats.hit_ratio,
        "cache evictions": store.buffer.stats.evictions,
        "deadlock aborts": result.aborts,
    }))
    return result.tps


def run_shore():
    env, engine = build_shore_engine(pool_pages=RECORDS // 4)
    adapter = ShoreAdapter(engine)
    ycsb = Ycsb(env, adapter, records=RECORDS, workload="a", seed=5)
    ycsb.setup()
    result = ycsb.run(threads=THREADS, ops_per_thread=OPS_PER_THREAD)
    print(format_kv("Shore-MT baseline, YCSB-A", {
        "operations": result.transactions,
        "throughput ops/s": result.tps,
        "mean latency us": result.mean_latency_us,
        "pool hit ratio": engine.pool.stats.hit_ratio,
        "WAL fsyncs": engine.fs.fsyncs,
        "deadlock aborts": result.aborts,
    }))
    return result.tps


def main() -> None:
    kaml_tps = run_kaml()
    print()
    shore_tps = run_shore()
    print(f"\nKAML / Shore-MT speedup: {kaml_tps / shore_tps:.2f}x "
          f"(paper reports 1.1x - 3.0x across the YCSB mixes)")


if __name__ == "__main__":
    main()
