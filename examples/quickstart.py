#!/usr/bin/env python
"""Quickstart: talk to a simulated KAML SSD with the Table I commands.

Creates a namespace, performs an atomic multi-record Put, reads the
records back with Get, and prints what the device did — all inside the
discrete-event simulator, so the timings printed are simulated
microseconds on the modeled hardware (16 flash channels x 4 chips).

Run:  python examples/quickstart.py
"""

from repro.harness import build_kaml_ssd
from repro.kaml import NamespaceAttributes, PutItem


def main() -> None:
    env, ssd = build_kaml_ssd()

    def session():
        # A namespace is an independent key space with its own mapping
        # table in the SSD's DRAM (Section IV-C of the paper).
        namespace_id = yield from ssd.create_namespace(
            NamespaceAttributes(expected_keys=1024)
        )
        print(f"created namespace {namespace_id} "
              f"({ssd.dram.used_bytes} B of on-board DRAM for its index)")

        # Atomic multi-record Put: either every record below lands, or
        # none do (Section IV-D's two-phase protocol).
        start = env.now
        yield from ssd.put([
            PutItem(namespace_id, 1, b"alpha", len(b"alpha")),
            PutItem(namespace_id, 2, b"beta", len(b"beta")),
            PutItem(namespace_id, 3, b"x" * 2048, 2048),   # variable sizes are native
        ])
        print(f"atomic Put of 3 records acknowledged in {env.now - start:.1f} "
              f"simulated us (committed in NVRAM, flash write in background)")

        for key in (1, 2, 3):
            start = env.now
            value = yield from ssd.get(namespace_id, key)
            shown = value if len(value) <= 8 else f"<{len(value)} bytes>"
            note = ""
            if key == 1:
                note = "  (first Get waits for the in-flight commit's index install)"
            print(f"Get({key}) -> {shown!r:20}  [{env.now - start:.1f} us]{note}")

        missing = yield from ssd.get(namespace_id, 99)
        print(f"Get(99) -> {missing} (absent keys return None)")

    proc = env.process(session())
    env.run()
    assert proc.ok

    print(f"\ndevice counters: {ssd.array.total_programs()} flash programs, "
          f"{ssd.array.total_reads()} flash reads, "
          f"{ssd.stats.puts} Puts, {ssd.stats.gets} Gets")


if __name__ == "__main__":
    main()
