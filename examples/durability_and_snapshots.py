#!/usr/bin/env python
"""Durability and snapshots: the services the mapping indirection buys.

Part 1 — crash recovery (Section IV-D): commit a batch, power-cut the
device before its flash writes finish, recover from the NVRAM staging
buffers, and show the batch survived atomically.

Part 2 — snapshots (the Introduction's motivating service): freeze a
namespace, keep overwriting it, and read the frozen state back while GC
churns the flash underneath.

Run:  python examples/durability_and_snapshots.py
"""

from repro.config import FlashGeometry, KamlParams, ReproConfig
from repro.kaml import KamlSsd, NamespaceAttributes, PutItem
from repro.sim import Environment


def crash_recovery_demo() -> None:
    print("=== Part 1: power-cut and recovery ===")
    env = Environment()
    config = ReproConfig()
    ssd = KamlSsd(env, config)
    state = {}

    def writer():
        nsid = yield from ssd.create_namespace(NamespaceAttributes(expected_keys=64))
        state["nsid"] = nsid
        yield from ssd.put([
            PutItem(nsid, 1, "balance:100", 512),
            PutItem(nsid, 2, "balance:250", 512),
            PutItem(nsid, 3, "audit-row", 512),
        ])
        state["acked"] = env.now

    env.process(writer())
    # Stop the world shortly after the Put acked — long before the page
    # flush timer would have programmed the records to flash.
    env.run(until=120.0)
    assert state.get("acked"), "the Put should have acked by now"
    programs = ssd.array.total_programs()
    print(f"Put of 3 records acked at t={state['acked']:.0f}us; "
          f"flash programs so far: {programs}")
    print("power cut!")
    ssd.simulate_crash()

    def recover_and_check():
        yield from ssd.recover()
        values = []
        for key in (1, 2, 3):
            value = yield from ssd.get(state["nsid"], key)
            values.append(value)
        return values

    proc = env.process(recover_and_check())
    env.run_until(proc)
    print(f"after recovery: {proc.value}")
    print(f"recovered batches: {ssd.stats.recovered_batches} "
          f"(replayed from battery-backed NVRAM)\n")


def snapshot_demo() -> None:
    print("=== Part 2: snapshots vs GC churn ===")
    env = Environment()
    geometry = FlashGeometry(
        channels=1, chips_per_channel=1, blocks_per_chip=12, pages_per_block=4
    )
    config = ReproConfig().with_(
        geometry=geometry, kaml=KamlParams(num_logs=1, flush_timeout_us=200.0)
    )
    ssd = KamlSsd(env, config)

    def flow():
        nsid = yield from ssd.create_namespace(NamespaceAttributes(expected_keys=32))
        yield from ssd.put([
            PutItem(nsid, k, f"monday-report-{k}", 2048) for k in range(4)
        ])
        snap = yield from ssd.snapshot_namespace(nsid)
        # A week of churn: overwrite everything many times over — far
        # more data than the tiny device holds, so GC must run.
        for i in range(200):
            yield from ssd.put([PutItem(nsid, i % 4, f"tuesday-{i}", 2048)])
            yield env.timeout(1500.0)
        yield from ssd.drain()
        current = yield from ssd.get(nsid, 0)
        frozen = yield from ssd.get_from_snapshot(snap, 0)
        erased = ssd.logs[0].stats.gc_erased_blocks
        yield from ssd.delete_snapshot(snap)
        return current, frozen, erased

    proc = env.process(flow())
    env.run_until(proc)
    current, frozen, erased = proc.value
    print(f"current value of key 0:  {current!r}")
    print(f"snapshot value of key 0: {frozen!r}")
    print(f"GC erased {erased} blocks during the churn — the snapshot's "
          f"records were kept valid throughout")


if __name__ == "__main__":
    crash_recovery_demo()
    snapshot_demo()
