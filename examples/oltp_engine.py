#!/usr/bin/env python
"""The caching layer as a database storage engine: TPC-B (Section V-D).

Uses the Table II transactional API directly — begin, read, update,
insert, commit — to run TPC-B AccountUpdate transactions with full
isolation, then demonstrates that the money invariant holds and shows
the effect of lock granularity (1 vs 16 records per lock).

Run:  python examples/oltp_engine.py
"""

from repro.harness import build_kaml_store, format_kv
from repro.workloads import KamlAdapter, TpcB

BRANCHES = 2
ACCOUNTS = 300
THREADS = 8
TXNS = 15


def run(records_per_lock: int):
    env, ssd, store = build_kaml_store(
        cache_bytes=16 << 20, records_per_lock=records_per_lock
    )
    adapter = KamlAdapter(store)
    tpcb = TpcB(env, adapter, branches=BRANCHES, accounts_per_branch=ACCOUNTS)
    tpcb.setup()
    result = tpcb.run(threads=THREADS, txns_per_thread=TXNS)

    # Consistency check: the sum of account balances in each branch must
    # equal the branch's balance (every delta is applied to both).
    def audit():
        mismatches = 0
        for branch in range(BRANCHES):
            total = 0
            for account in range(ACCOUNTS):
                value = yield from store.get(
                    adapter.namespace_of("account"),
                    tpcb.account_key(branch, account),
                )
                total += value or 0
            branch_balance = yield from store.get(
                adapter.namespace_of("branch"), branch
            )
            if total != (branch_balance or 0):
                mismatches += 1
        return mismatches

    proc = env.process(audit())
    env.run()
    mismatches = proc.value

    print(format_kv(f"TPC-B AccountUpdate, {records_per_lock} record(s)/lock", {
        "transactions": result.transactions,
        "throughput tps": result.tps,
        "mean latency us": result.mean_latency_us,
        "deadlock aborts": result.aborts,
        "branch invariant violations": mismatches,
    }))
    assert mismatches == 0, "isolation failure!"
    return result.tps


def main() -> None:
    fine = run(records_per_lock=1)
    print()
    coarse = run(records_per_lock=16)
    print(f"\ncoarse locks cost {100 * (1 - coarse / fine):.0f}% of throughput "
          f"(the paper measures a drop of up to 47% for 16 records/lock)")


if __name__ == "__main__":
    main()
