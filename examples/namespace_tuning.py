#!/usr/bin/env python
"""Namespace/log tuning: buying write bandwidth with logs (Section IV-B).

Two tenants share one KAML SSD.  First both namespaces use the default
policy (all logs shared); then the latency-sensitive tenant is given
dedicated logs while the batch tenant is pinned to a small set — showing
how the namespace-to-log mapping controls bandwidth allocation, and that
the mapping can be changed at runtime.

Run:  python examples/namespace_tuning.py
"""

from dataclasses import replace

from repro.config import ReproConfig
from repro.harness import build_kaml_ssd, format_table
from repro.kaml import (
    AllLogsPolicy,
    DedicatedLogsPolicy,
    ExplicitLogsPolicy,
    NamespaceAttributes,
    PutItem,
)

VALUE_SIZE = 2048
OPS = 1600
THREADS = 16


def make_ssd():
    """An SSD whose NVRAM is small enough that sustained Put bandwidth is
    bounded by how fast the assigned logs drain to flash."""
    config = ReproConfig()
    config = config.with_(
        resources=replace(config.resources, nvram_bytes=1 << 20)
    )
    return build_kaml_ssd(config=config)


def measure_put_bandwidth(env, ssd, namespace_id, tag):
    """Sustained Put bandwidth for one tenant (MB/s)."""
    done = []

    def worker(thread_id):
        for i in range(OPS // THREADS):
            key = thread_id * 10_000 + i
            yield from ssd.put([PutItem(namespace_id, key, (tag, i), VALUE_SIZE)])

    start = env.now
    procs = [env.process(worker(t)) for t in range(THREADS)]
    finish = env.all_of(procs)
    finish.add_callback(lambda _e: done.append(env.now))
    env.run()
    elapsed = done[0] - start
    return OPS * VALUE_SIZE / elapsed  # B/us == MB/s


def main() -> None:
    rows = []

    # Scenario 1: both tenants share every log (the default).
    env, ssd = make_ssd()

    def create_shared():
        a = yield from ssd.create_namespace(NamespaceAttributes(expected_keys=4096))
        b = yield from ssd.create_namespace(NamespaceAttributes(expected_keys=4096))
        return a, b

    proc = env.process(create_shared())
    env.run()
    tenant_a, tenant_b = proc.value
    rows.append(["shared (default)", "tenant A",
                 len(ssd.namespaces[tenant_a].log_ids),
                 measure_put_bandwidth(env, ssd, tenant_a, "a")])

    # Scenario 2: tenant A gets 56 dedicated logs, tenant B is pinned to
    # the remaining 8 — and the change happens at runtime.
    env, ssd = make_ssd()

    def create_tuned():
        a = yield from ssd.create_namespace(
            NamespaceAttributes(expected_keys=4096, log_policy=DedicatedLogsPolicy(56))
        )
        b = yield from ssd.create_namespace(
            NamespaceAttributes(expected_keys=4096, log_policy=AllLogsPolicy())
        )
        return a, b

    proc = env.process(create_tuned())
    env.run()
    tenant_a, tenant_b = proc.value
    leftover = sorted(
        set(log.log_id for log in ssd.logs) - set(ssd.namespaces[tenant_a].log_ids)
    )
    ssd.retarget_namespace(tenant_b, ExplicitLogsPolicy(leftover))
    rows.append(["dedicated 56 logs", "tenant A",
                 len(ssd.namespaces[tenant_a].log_ids),
                 measure_put_bandwidth(env, ssd, tenant_a, "a")])
    rows.append(["pinned to 8 logs", "tenant B",
                 len(ssd.namespaces[tenant_b].log_ids),
                 measure_put_bandwidth(env, ssd, tenant_b, "b")])

    print(format_table(
        "Write bandwidth vs log assignment",
        ["policy", "tenant", "logs", "Put MB/s"],
        rows,
    ))
    print("\nMore logs per namespace -> more flash targets appending in "
          "parallel (Figure 8 sweeps this from 16 to 64).")


if __name__ == "__main__":
    main()
